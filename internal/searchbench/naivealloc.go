package searchbench

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"cirank/internal/graph"
	"cirank/internal/rwmp"
	"cirank/internal/search"
)

// This file freezes the pre-rewrite branch-and-bound driver — Algorithm 1
// with the §IV-B bound machinery, exactly as internal/search ran it before
// the pooled-scratch rewrite: a heap-allocated candidate struct per generated
// tree, a fresh canonical-key string per dedup check, a freshly allocated
// source slice per evaluation, map-backed trees cloned on every grow and
// merge, and per-query maps built from nothing. It is sequential (the
// allocation profile, not the fan-out, is what the baseline measures) and its
// rankings are byte-identical to the live engine's, which
// TestNaiveAllocMatchesLiveEngine certifies.

// Result is one ranked answer of the frozen baseline: the tree's canonical
// key and its Eq. 4 score. Keys rather than trees keep the baseline's public
// surface independent of the live jtt representation.
type Result struct {
	// Key is the answer tree's canonical (rooting-independent) key, in the
	// same format as jtt.Tree.CanonicalKey.
	Key string
	// Score is the tree's collective importance under Eq. 4.
	Score float64
}

// NaiveAllocTopK runs the frozen pre-rewrite branch-and-bound search over the
// model and returns the ranked top-k answers. It honors the K, Diameter,
// Index, MaxExpansions, NoDynamicBounds and ExtendedMerge options; Workers
// and Scores are ignored (the frozen path is sequential and uncached).
func NaiveAllocTopK(m *rwmp.Model, terms []string, opts search.Options) ([]Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	qc, ok, err := prepareFrozen(m, terms)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	if !opts.NoDynamicBounds {
		qc.computeTermDistances(m.Graph(), opts.Diameter)
	}
	qc.maxDamp = m.MaxDamp()
	st := &frozenState{
		m:      m,
		qc:     qc,
		opts:   opts,
		seen:   make(map[string]bool),
		byRoot: make(map[graph.NodeID][]*frozenCandidate),
		top:    newFrozenTopK(opts.K),
	}
	seeds := make([]*mapTree, len(qc.nonFree))
	for i, v := range qc.nonFree {
		seeds[i] = newSingle(v)
	}
	st.process(seeds)
	halfD := (opts.Diameter + 1) / 2
	for st.pq.Len() > 0 {
		var batch []*frozenCandidate
		for len(batch) < frozenExpandBatch && st.pq.Len() > 0 {
			if st.top.full() && st.pq[0].ub < st.top.min() {
				break
			}
			if st.opts.MaxExpansions > 0 && st.expanded >= st.opts.MaxExpansions {
				break
			}
			batch = append(batch, heap.Pop(&st.pq).(*frozenCandidate))
			st.expanded++
		}
		if len(batch) == 0 {
			break
		}
		var grown []*mapTree
		for _, c := range batch {
			root := c.tree.root
			for _, e := range m.Graph().OutEdges(root) {
				nb := e.To
				if c.tree.contains(nb) {
					continue
				}
				g, err := c.tree.grow(m.Graph(), nb)
				if err != nil {
					continue
				}
				if g.depth() > halfD {
					continue
				}
				grown = append(grown, g)
			}
		}
		st.process(grown)
	}
	return st.top.results(), nil
}

// frozenExpandBatch mirrors the live expandBatch constant so both engines
// walk the same batch structure.
const frozenExpandBatch = 32

// frozenCandidate is the pre-rewrite candidate: individually heap-allocated,
// with a freshly built key string and source slice.
type frozenCandidate struct {
	tree     *mapTree
	key      string
	cover    uint64
	sources  []graph.NodeID
	ub       float64
	seq      int
	score    float64
	complete bool
}

// frozenQueue is the max-heap on upper bound, ties broken by commit order.
type frozenQueue []*frozenCandidate

func (q frozenQueue) Len() int { return len(q) }
func (q frozenQueue) Less(i, j int) bool {
	if q[i].ub != q[j].ub {
		return q[i].ub > q[j].ub
	}
	return q[i].seq < q[j].seq
}
func (q frozenQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *frozenQueue) Push(x interface{}) { *q = append(*q, x.(*frozenCandidate)) }
func (q *frozenQueue) Pop() interface{} {
	old := *q
	n := len(old)
	c := old[n-1]
	*q = old[:n-1]
	return c
}

// frozenState carries one frozen branch-and-bound run.
type frozenState struct {
	m        *rwmp.Model
	qc       *frozenQueryContext
	opts     search.Options
	pq       frozenQueue
	seen     map[string]bool
	byRoot   map[graph.NodeID][]*frozenCandidate
	top      *frozenTopK
	seq      int
	expanded int
	gen      int
}

// process drives new trees through the evaluate/commit pipeline level by
// level until the merge closure is exhausted, exactly as the live search
// does.
func (st *frozenState) process(trees []*mapTree) {
	for len(trees) > 0 {
		var level []*frozenCandidate
		for _, tree := range trees {
			if st.opts.MaxExpansions > 0 && st.gen >= 40*st.opts.MaxExpansions {
				break
			}
			key := tree.canonicalKey() + "@" + strconv.Itoa(int(tree.root))
			if st.seen[key] {
				continue
			}
			st.seen[key] = true
			st.gen++
			level = append(level, &frozenCandidate{tree: tree, key: key})
		}
		for _, c := range level {
			st.fill(c)
		}
		trees = trees[:0:0]
		for _, c := range level {
			trees = append(trees, st.commit(c)...)
		}
	}
}

// fill computes cover, sources, score (for complete answers) and the §IV-B
// upper bound, allocating a fresh source slice per candidate.
func (st *frozenState) fill(c *frozenCandidate) {
	c.cover = st.qc.cover(c.tree)
	c.sources = st.qc.sourcesIn(c.tree)
	if c.cover == st.qc.full && st.qc.validAnswer(c.tree, st.opts.Diameter) {
		c.complete = true
		c.score = scoreTree(st.m, c.tree, c.sources, st.qc.terms)
	}
	c.ub = st.upperBound(c)
}

// commit folds one evaluated candidate into the search state and returns the
// merged trees it produces.
func (st *frozenState) commit(c *frozenCandidate) []*mapTree {
	if c.complete {
		st.top.add(c.tree, c.score)
	}
	if c.ub <= 0 {
		return nil
	}
	if st.top.full() && c.ub < st.top.min() {
		return nil
	}
	c.seq = st.seq
	st.seq++
	heap.Push(&st.pq, c)
	root := c.tree.root
	others := st.byRoot[root]
	st.byRoot[root] = append(st.byRoot[root], c)
	var out []*mapTree
	for _, other := range others {
		if !st.mergeAllowed(c, other) {
			continue
		}
		merged, err := c.tree.merge(other.tree)
		if err != nil {
			continue
		}
		out = append(out, merged)
	}
	return out
}

// mergeAllowed applies the §IV-B merge admission rule.
func (st *frozenState) mergeAllowed(a, b *frozenCandidate) bool {
	if st.opts.ExtendedMerge {
		return true
	}
	union := a.cover | b.cover
	return union != a.cover && union != b.cover
}

// frozenSupplyScanCap mirrors the live supplyScanCap.
const frozenSupplyScanCap = 256

// upperBound computes ub(C) = max(ce, pe), the frozen copy of the live
// bound (see internal/search/bounds.go for the full derivation).
func (st *frozenState) upperBound(c *frozenCandidate) float64 {
	m := st.m
	qc := st.qc
	root := c.tree.root
	missing := qc.full &^ c.cover

	var supplies []float64
	for ti := range qc.terms {
		if missing&(uint64(1)<<ti) == 0 {
			continue
		}
		best := st.bestSupply(ti, c)
		if best <= 0 {
			return 0
		}
		supplies = append(supplies, best)
	}

	flowAtRoot := make([]float64, len(c.sources))
	for i, src := range c.sources {
		flowAtRoot[i] = delivered(m, c.tree, src, root, qc.terms)
	}
	dampRoot := m.Damp(root)

	ubNew := math.Inf(1)
	for i, src := range c.sources {
		f := flowAtRoot[i]
		if src != root {
			f *= dampRoot
		}
		if f < ubNew {
			ubNew = f
		}
	}

	flowSum := 0.0
	switch {
	case missing == 0 && len(c.sources) == 1:
		v := c.sources[0]
		bound := m.Generation(v, qc.terms)
		bestAdd := 0.0
		for ti := range qc.terms {
			if sup := st.bestSupply(ti, c); sup > bestAdd {
				bestAdd = sup
			}
		}
		if bestAdd > 0 {
			factor := pathFactor(m, c.tree, root, v)
			if v != root {
				factor *= dampRoot
			}
			if alt := bestAdd * factor; alt > bound {
				bound = alt
			}
		}
		flowSum = bound
	case missing == 0:
		for _, v := range c.sources {
			flowSum += nodeScore(m, c.tree, v, c.sources, qc.terms)
		}
	default:
		for _, v := range c.sources {
			ub := math.Inf(1)
			for _, src := range c.sources {
				if src == v {
					continue
				}
				if f := delivered(m, c.tree, src, v, qc.terms); f < ub {
					ub = f
				}
			}
			factor := pathFactor(m, c.tree, root, v)
			if v != root {
				factor *= dampRoot
			}
			for _, sup := range supplies {
				if f := sup * factor; f < ub {
					ub = f
				}
			}
			flowSum += ub
		}
	}
	aMin := 0.0
	if missing != 0 {
		aMin = 1
	}
	n := float64(len(c.sources))
	atMin := (flowSum + aMin*ubNew) / (n + aMin)
	if ubNew > atMin {
		return ubNew
	}
	return atMin
}

// bestSupply bounds the message count any node covering term ti could
// deliver to the candidate's root (frozen copy of the live bound).
func (st *frozenState) bestSupply(ti int, c *frozenCandidate) float64 {
	nodes := st.qc.byGen[ti]
	root := c.tree.root
	idx := st.opts.Index
	budget := st.opts.Diameter - c.tree.depth()
	dmin := st.qc.distToTerm(ti, root, st.opts.Diameter)
	if dmin > budget {
		return 0
	}
	refined := st.neighborRefinedSupply(ti, c, nodes, root, dmin)
	if idx == nil {
		return refined
	}
	best := 0.0
	scanned := 0
	for _, v := range nodes {
		if c.tree.contains(v) {
			continue
		}
		g := st.qc.gen[v]
		if g <= best {
			break
		}
		if idx.DistanceLB(v, root) > budget {
			continue
		}
		if r := g * idx.RetentionUB(v, root); r > best {
			best = r
		}
		scanned++
		if scanned >= frozenSupplyScanCap {
			if tail := frozenTailGen(nodes, st.qc.gen, v); tail > best {
				best = tail
			}
			break
		}
	}
	if refined < best {
		return refined
	}
	return best
}

// neighborRefinedSupply is the index-free supplement bound with the
// direct-neighbour refinement (frozen copy).
func (st *frozenState) neighborRefinedSupply(ti int, c *frozenCandidate, nodes []graph.NodeID, root graph.NodeID, dmin int) float64 {
	m := st.m
	nbrDamp := 0.0
	for _, e := range m.Graph().OutEdges(root) {
		if c.tree.contains(e.To) {
			continue
		}
		if d := m.Damp(e.To); d > nbrDamp {
			nbrDamp = d
		}
	}
	retention := func(d int) float64 {
		if d <= 1 {
			return 1
		}
		r := nbrDamp
		for i := 2; i < d; i++ {
			r *= st.qc.maxDamp
		}
		return r
	}
	budget := st.opts.Diameter - c.tree.depth()
	best := 0.0
	var topSup []frozenSupplier
	if st.qc.topSup != nil {
		topSup = st.qc.topSup[ti]
	}
	inTop := make(map[graph.NodeID]bool, len(topSup))
	for _, sup := range topSup {
		inTop[sup.node] = true
		if c.tree.contains(sup.node) {
			continue
		}
		d := int(sup.dist[root])
		if d < 0 || d > budget {
			continue
		}
		if cand := sup.gen * retention(d); cand > best {
			best = cand
		}
	}
	for _, v := range nodes {
		if c.tree.contains(v) || inTop[v] {
			continue
		}
		if cand := st.qc.gen[v] * retention(dmin); cand > best {
			best = cand
		}
		break
	}
	if dmin <= 1 {
		for _, e := range m.Graph().OutEdges(root) {
			v := e.To
			if c.tree.contains(v) {
				continue
			}
			if st.qc.masks[v]&(uint64(1)<<ti) == 0 {
				continue
			}
			if g := st.qc.gen[v]; g > best {
				best = g
			}
		}
	}
	return best
}

// frozenTailGen returns the highest generation strictly after node v in the
// descending-generation list.
func frozenTailGen(nodes []graph.NodeID, gen map[graph.NodeID]float64, v graph.NodeID) float64 {
	for i, n := range nodes {
		if n == v && i+1 < len(nodes) {
			return gen[nodes[i+1]]
		}
	}
	return 0
}

// frozenQueryContext is the pre-rewrite per-query matching state, with maps
// allocated from nothing every query.
type frozenQueryContext struct {
	terms    []string
	full     uint64
	masks    map[graph.NodeID]uint64
	perTerm  [][]graph.NodeID
	gen      map[graph.NodeID]float64
	byGen    [][]graph.NodeID
	nonFree  []graph.NodeID
	termDist [][]int32
	maxDamp  float64
	topSup   [][]frozenSupplier
}

// frozenSupplier is one high-generation keyword node with its BFS distances.
type frozenSupplier struct {
	node graph.NodeID
	gen  float64
	dist []int32
}

// frozenTopSuppliers mirrors the live topSuppliersPerTerm constant.
const frozenTopSuppliers = 4

// prepareFrozen normalizes the query and resolves its non-free node sets,
// exactly as search.Searcher.prepare did before the rewrite.
func prepareFrozen(m *rwmp.Model, rawTerms []string) (*frozenQueryContext, bool, error) {
	var terms []string
	seen := map[string]bool{}
	for _, t := range rawTerms {
		t = strings.ToLower(strings.TrimSpace(t))
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		return nil, false, search.ErrEmptyQuery
	}
	if len(terms) > 64 {
		return nil, false, fmt.Errorf("%w: query has %d terms, limit 64", search.ErrBadOptions, len(terms))
	}
	qc := &frozenQueryContext{
		terms: terms,
		full:  (uint64(1) << len(terms)) - 1,
		masks: make(map[graph.NodeID]uint64),
		gen:   make(map[graph.NodeID]float64),
	}
	ix := m.Index()
	for i, term := range terms {
		nodes := ix.MatchingNodes(term)
		if len(nodes) == 0 {
			return qc, false, nil
		}
		qc.perTerm = append(qc.perTerm, nodes)
		for _, v := range nodes {
			qc.masks[v] |= uint64(1) << i
		}
	}
	for v := range qc.masks {
		qc.nonFree = append(qc.nonFree, v)
		qc.gen[v] = m.Generation(v, terms)
	}
	sort.Slice(qc.nonFree, func(i, j int) bool { return qc.nonFree[i] < qc.nonFree[j] })
	qc.byGen = make([][]graph.NodeID, len(terms))
	for i := range terms {
		nodes := append([]graph.NodeID(nil), qc.perTerm[i]...)
		sort.Slice(nodes, func(a, b int) bool {
			ga, gb := qc.gen[nodes[a]], qc.gen[nodes[b]]
			if ga != gb {
				return ga > gb
			}
			return nodes[a] < nodes[b]
		})
		qc.byGen[i] = nodes
	}
	return qc, true, nil
}

// computeTermDistances fills termDist and topSup sequentially.
func (qc *frozenQueryContext) computeTermDistances(g *graph.Graph, maxDepth int) {
	qc.termDist = make([][]int32, len(qc.terms))
	qc.topSup = make([][]frozenSupplier, len(qc.terms))
	for ti := range qc.terms {
		qc.termDist[ti] = frozenBFSDistances(g, qc.perTerm[ti], maxDepth)
		top := qc.byGen[ti]
		if len(top) > frozenTopSuppliers {
			top = top[:frozenTopSuppliers]
		}
		for _, v := range top {
			qc.topSup[ti] = append(qc.topSup[ti], frozenSupplier{
				node: v,
				gen:  qc.gen[v],
				dist: frozenBFSDistances(g, []graph.NodeID{v}, maxDepth),
			})
		}
	}
}

// frozenBFSDistances runs a depth-bounded multi-source BFS with per-layer
// frontier allocations, the pre-rewrite cost model.
func frozenBFSDistances(g *graph.Graph, sources []graph.NodeID, maxDepth int) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	frontier := make([]graph.NodeID, 0, len(sources))
	for _, v := range sources {
		if dist[v] < 0 {
			dist[v] = 0
			frontier = append(frontier, v)
		}
	}
	for depth := int32(0); depth < int32(maxDepth) && len(frontier) > 0; depth++ {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, e := range g.OutEdges(u) {
				if dist[e.To] < 0 {
					dist[e.To] = depth + 1
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return dist
}

// distToTerm returns the exact distance from v to the nearest node matching
// term ti, or maxDepth+1 beyond the horizon.
func (qc *frozenQueryContext) distToTerm(ti int, v graph.NodeID, maxDepth int) int {
	if qc.termDist == nil {
		return 0
	}
	d := qc.termDist[ti][v]
	if d < 0 {
		return maxDepth + 1
	}
	return int(d)
}

// cover returns the union of term masks over t's nodes.
func (qc *frozenQueryContext) cover(t *mapTree) uint64 {
	var c uint64
	for _, v := range t.nodes() {
		c |= qc.masks[v]
	}
	return c
}

// sourcesIn lists the non-free nodes of t, ascending, freshly allocated.
func (qc *frozenQueryContext) sourcesIn(t *mapTree) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range t.nodes() {
		if qc.masks[v] != 0 {
			out = append(out, v)
		}
	}
	return out
}

// isNonFree reports whether v matches any query term.
func (qc *frozenQueryContext) isNonFree(v graph.NodeID) bool { return qc.masks[v] != 0 }

// validAnswer reports whether t is a complete, reduced, in-diameter answer.
func (qc *frozenQueryContext) validAnswer(t *mapTree, diameter int) bool {
	return qc.cover(t) == qc.full && t.isReduced(qc.isNonFree) && t.diameter() <= diameter
}

// frozenTopK is the pre-rewrite best-k list with canonical-key dedup.
type frozenTopK struct {
	k     int
	items []Result
	keys  map[string]bool
}

func newFrozenTopK(k int) *frozenTopK { return &frozenTopK{k: k, keys: make(map[string]bool)} }

// beats reports whether (score, key) orders strictly before item i.
func (t *frozenTopK) beats(score float64, key string, i int) bool {
	if score != t.items[i].Score {
		return score > t.items[i].Score
	}
	return key < t.items[i].Key
}

// add inserts the answer unless already present or ordered out of the list.
func (t *frozenTopK) add(tree *mapTree, score float64) {
	key := tree.canonicalKey()
	if t.keys[key] {
		return
	}
	if len(t.items) == t.k && !t.beats(score, key, len(t.items)-1) {
		return
	}
	t.keys[key] = true
	pos := sort.Search(len(t.items), func(i int) bool { return t.beats(score, key, i) })
	t.items = append(t.items, Result{})
	copy(t.items[pos+1:], t.items[pos:])
	t.items[pos] = Result{Key: key, Score: score}
	if len(t.items) > t.k {
		last := len(t.items) - 1
		delete(t.keys, t.items[last].Key)
		t.items = t.items[:last]
	}
}

func (t *frozenTopK) full() bool { return len(t.items) == t.k }

func (t *frozenTopK) min() float64 {
	if !t.full() {
		return -1
	}
	return t.items[len(t.items)-1].Score
}

func (t *frozenTopK) results() []Result { return t.items }
