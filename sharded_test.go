package cirank

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"cirank/internal/datagen"
	"cirank/internal/graph"
)

// shardFixture builds a generated DBLP engine plus a query workload through
// the public builder — large enough that partitions at count 4 are
// non-trivial, small enough for the race detector.
func shardFixture(t testing.TB) (*Engine, [][]string) {
	t.Helper()
	ds, err := datagen.GenerateDBLP(datagen.DefaultDBLPConfig(7).Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	b := NewDBLPBuilder()
	if err := ds.Replay(b.InsertEntity, b.Relate); err != nil {
		t.Fatal(err)
	}
	eng, err := b.Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	built, err := datagen.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := built.GenerateWorkload(datagen.UserLogConfig(16, 11))
	if err != nil {
		t.Fatal(err)
	}
	terms := make([][]string, len(queries))
	for i, q := range queries {
		terms[i] = q.Terms
	}
	return eng, terms
}

// sameResults demands bitwise-equal rankings: same order, bit-equal scores,
// identical rows and edges.
func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: result %d score %.17g, want %.17g", label, i, got[i].Score, want[i].Score)
		}
		if len(got[i].Rows) != len(want[i].Rows) || len(got[i].Edges) != len(want[i].Edges) {
			t.Fatalf("%s: result %d shape differs", label, i)
		}
		for j := range got[i].Rows {
			if got[i].Rows[j] != want[i].Rows[j] {
				t.Fatalf("%s: result %d row %d differs: %+v vs %+v",
					label, i, j, got[i].Rows[j], want[i].Rows[j])
			}
		}
		for j := range got[i].Edges {
			if got[i].Edges[j] != want[i].Edges[j] {
				t.Fatalf("%s: result %d edge %d differs", label, i, j)
			}
		}
	}
}

func TestShardedByteIdentity(t *testing.T) {
	eng, queries := shardFixture(t)
	for _, count := range []int{1, 2, 4} {
		shards, err := ShardEngines(eng, count, 0)
		if err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		se, err := NewSharded(shards)
		if err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		if se.NumNodes() != eng.NumNodes() || se.NumEdges() != eng.NumEdges() {
			t.Fatalf("count %d: coordinator reports %d/%d, engine has %d/%d",
				count, se.NumNodes(), se.NumEdges(), eng.NumNodes(), eng.NumEdges())
		}
		for qi, terms := range queries {
			want, err := eng.SearchTerms(terms, 5, SearchOptions{})
			if err != nil {
				t.Fatalf("query %d: single-engine: %v", qi, err)
			}
			got, err := se.SearchTerms(terms, 5, SearchOptions{})
			if err != nil {
				t.Fatalf("count %d query %d: %v", count, qi, err)
			}
			sameResults(t, "sharded", got, want)
		}
	}
}

func TestShardedTermSelectivity(t *testing.T) {
	eng, queries := shardFixture(t)
	shards, err := ShardEngines(eng, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, terms := range queries {
		for _, term := range terms {
			if got, want := se.TermSelectivity(term), eng.TermSelectivity(term); got != want {
				t.Fatalf("TermSelectivity(%q) = %d sharded, %d single-engine", term, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no terms checked")
	}
	if se.TermSelectivity("nosuchterm") != 0 {
		t.Error("unknown term has nonzero selectivity")
	}
}

func TestShardSnapshotRoundTrip(t *testing.T) {
	eng, queries := shardFixture(t)
	shards, err := ShardEngines(eng, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := shards[1].ShardInfo()
	if !ok || info.Index != 1 || info.Count != 2 || info.Radius != DefaultShardRadius {
		t.Fatalf("ShardInfo = %+v, %v", info, ok)
	}
	if info.TotalNodes != eng.NumNodes() || info.TotalEdges != eng.NumEdges() {
		t.Fatalf("ShardInfo totals %d/%d, want %d/%d",
			info.TotalNodes, info.TotalEdges, eng.NumNodes(), eng.NumEdges())
	}
	if _, ok := eng.ShardInfo(); ok {
		t.Fatal("unpartitioned engine claims a shard slice")
	}

	base := filepath.Join(t.TempDir(), "snap")
	if err := SaveShardSet(shards, base); err != nil {
		t.Fatal(err)
	}
	se, err := OpenShardSet(base)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	if se.NumShards() != 2 || se.Radius() != DefaultShardRadius {
		t.Fatalf("reopened set: %d shards radius %d", se.NumShards(), se.Radius())
	}
	for qi, terms := range queries[:4] {
		want, err := eng.SearchTerms(terms, 5, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := se.SearchTerms(terms, 5, SearchOptions{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameResults(t, "reopened sharded", got, want)
	}
	// Missing member: shard 1's file gone.
	if err := SaveShardSet(shards, filepath.Join(t.TempDir(), "gone")); err != nil {
		t.Fatal(err)
	}
}

// TestShardStrategiesAndPrune sweeps the strategy × frontier-prune grid:
// every combination must reproduce the single-engine ranking byte for byte.
// The difftest harness runs the same grid on larger workloads; this is the
// fast in-tree anchor.
func TestShardStrategiesAndPrune(t *testing.T) {
	eng, queries := shardFixture(t)
	if len(queries) > 6 {
		queries = queries[:6]
	}
	for _, strategy := range []ShardStrategy{ShardLocality, ShardContiguous} {
		for _, count := range []int{2, 4} {
			shards, err := ShardEnginesWithStrategy(context.Background(), eng, count, 0, strategy)
			if err != nil {
				t.Fatalf("%v count %d: %v", strategy, count, err)
			}
			se, err := NewSharded(shards)
			if err != nil {
				t.Fatalf("%v count %d: %v", strategy, count, err)
			}
			for qi, terms := range queries {
				want, err := eng.SearchTerms(terms, 5, SearchOptions{})
				if err != nil {
					t.Fatalf("query %d: %v", qi, err)
				}
				for _, noPrune := range []bool{false, true} {
					got, err := se.SearchTerms(terms, 5, SearchOptions{DisableFrontierPrune: noPrune})
					if err != nil {
						t.Fatalf("%v count %d query %d noPrune=%v: %v", strategy, count, qi, noPrune, err)
					}
					sameResults(t, strategy.String(), got, want)
				}
			}
		}
	}
}

// TestShardPlanSnapshotRoundTrip pins the locality plan's trip through the
// v2 format: the non-contiguous owned set survives save/load, the frontier
// distances are rebuilt at load, and a re-save is byte-stable.
func TestShardPlanSnapshotRoundTrip(t *testing.T) {
	eng, queries := shardFixture(t)
	shards, err := ShardEngines(eng, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded := make([]*Engine, len(shards))
	for i, sh := range shards {
		snap := saveV2(t, sh)
		ld, err := LoadEngine(bytes.NewReader(snap))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		wantInfo, _ := sh.ShardInfo()
		gotInfo, ok := ld.ShardInfo()
		if !ok || gotInfo != wantInfo {
			t.Fatalf("shard %d info %+v, want %+v", i, gotInfo, wantInfo)
		}
		// The locality plan at count 4 is not an interval split, so the
		// explicit owned list must carry more than the span says.
		if gotInfo.OwnedCount == gotInfo.OwnedHi-gotInfo.OwnedLo {
			t.Logf("shard %d owned set is an interval (possible but unexpected at count 4)", i)
		}
		if len(ld.shard.Owned) != len(sh.shard.Owned) {
			t.Fatalf("shard %d owned length %d, want %d", i, len(ld.shard.Owned), len(sh.shard.Owned))
		}
		for j, v := range sh.shard.Owned {
			if ld.shard.Owned[j] != v {
				t.Fatalf("shard %d Owned[%d] = %d, want %d", i, j, ld.shard.Owned[j], v)
			}
		}
		// ownedDist is derived, not serialized: the loader recomputes it and
		// must land on exactly the build-time values.
		if len(ld.ownedDist) != len(sh.ownedDist) {
			t.Fatalf("shard %d ownedDist length %d, want %d", i, len(ld.ownedDist), len(sh.ownedDist))
		}
		for v := range sh.ownedDist {
			if ld.ownedDist[v] != sh.ownedDist[v] {
				t.Fatalf("shard %d ownedDist[%d] = %d, want %d", i, v, ld.ownedDist[v], sh.ownedDist[v])
			}
		}
		if again := saveV2(t, ld); !bytes.Equal(snap, again) {
			t.Fatalf("shard %d re-save differs: %d vs %d bytes", i, len(snap), len(again))
		}
		loaded[i] = ld
	}
	se, err := NewSharded(loaded)
	if err != nil {
		t.Fatal(err)
	}
	for qi, terms := range queries[:4] {
		want, err := eng.SearchTerms(terms, 5, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := se.SearchTerms(terms, 5, SearchOptions{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameResults(t, "reloaded locality set", got, want)
	}
}

// shardSectionBytes assembles a raw 56-byte shard section for decoder tests.
func shardSectionBytes(index, count, radius, lo, hi, totalNodes, totalEdges uint64) []byte {
	b := make([]byte, 0, shardSectionSize)
	for _, v := range []uint64{index, count, radius, lo, hi, totalNodes, totalEdges} {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

// TestDecodeShardSectionLegacyOwned drives the decoder directly: a snapshot
// written before locality plans has no shard.owned section, and ownership
// must be synthesized as the whole [lo, hi) interval.
func TestDecodeShardSectionLegacyOwned(t *testing.T) {
	secs := map[string][]byte{
		secShard: shardSectionBytes(1, 2, 3, 10, 14, 20, 40),
	}
	m, err := decodeShardSection(secs, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Owned) != 4 {
		t.Fatalf("synthesized %d owned nodes, want 4", len(m.Owned))
	}
	for j, v := range m.Owned {
		if int(v) != 10+j {
			t.Fatalf("Owned[%d] = %d, want %d", j, v, 10+j)
		}
	}
	if m.Lo != 10 || m.Hi != 14 {
		t.Fatalf("span [%d, %d), want [10, 14)", m.Lo, m.Hi)
	}
}

// TestDecodeShardSectionOwnedValidation covers the explicit-owned branch:
// well-formed sets decode, malformed ones fail as ErrBadSnapshot.
func TestDecodeShardSectionOwnedValidation(t *testing.T) {
	section := func(lo, hi uint64, owned []uint32) map[string][]byte {
		ob := make([]byte, 0, 4*len(owned))
		for _, v := range owned {
			ob = binary.LittleEndian.AppendUint32(ob, v)
		}
		return map[string][]byte{
			secShard:    shardSectionBytes(0, 2, 3, lo, hi, 20, 40),
			secShardOwn: ob,
		}
	}
	m, err := decodeShardSection(section(2, 8, []uint32{2, 5, 7}), 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if want := []graph.NodeID{2, 5, 7}; len(m.Owned) != len(want) ||
		m.Owned[0] != want[0] || m.Owned[1] != want[1] || m.Owned[2] != want[2] {
		t.Fatalf("Owned = %v, want %v", m.Owned, want)
	}
	// Empty owned set with an empty span is legal (more shards than nodes).
	if m, err = decodeShardSection(section(0, 0, nil), 20, 30); err != nil || len(m.Owned) != 0 {
		t.Fatalf("empty owned set: %v, %v", m, err)
	}
	bad := map[string]map[string][]byte{
		"unsorted owned":        section(2, 8, []uint32{2, 7, 5}),
		"duplicate owned":       section(2, 8, []uint32{2, 5, 5, 7}),
		"owned out of range":    section(2, 26, []uint32{2, 25}),
		"span head mismatch":    section(1, 8, []uint32{2, 5, 7}),
		"span tail mismatch":    section(2, 9, []uint32{2, 5, 7}),
		"empty set with span":   section(2, 8, nil),
		"ragged section length": {secShard: shardSectionBytes(0, 2, 3, 2, 8, 20, 40), secShardOwn: []byte{1, 2, 3}},
	}
	for name, secs := range bad {
		if _, err := decodeShardSection(secs, 20, 30); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
	}
}

func TestShardedValidation(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	shards, err := ShardEngines(eng, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-sharding a shard engine is rejected.
	if _, err := ShardEngines(shards[0], 2, 1); !errors.Is(err, ErrShardSet) {
		t.Errorf("re-sharding a shard: err = %v", err)
	}
	// Out-of-order set.
	if _, err := NewSharded([]*Engine{shards[1], shards[0]}); !errors.Is(err, ErrShardSet) {
		t.Errorf("out-of-order set: err = %v", err)
	}
	// Incomplete set.
	if _, err := NewSharded(shards[:1]); !errors.Is(err, ErrShardSet) {
		t.Errorf("incomplete set: err = %v", err)
	}
	// Non-shard engine.
	if _, err := NewSharded([]*Engine{eng}); !errors.Is(err, ErrShardSet) {
		t.Errorf("plain engine: err = %v", err)
	}
	se, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	// Radius 1 certifies diameters up to 2; the default 4 must be rejected.
	if _, err := se.Search("ullman", 3); !errors.Is(err, ErrBadOptions) {
		t.Errorf("over-horizon diameter: err = %v", err)
	}
	res, err := se.SearchTerms([]string{"tsimmis"}, 3, SearchOptions{Diameter: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.SearchTerms([]string{"tsimmis"}, 3, SearchOptions{Diameter: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "radius-1 set", res, want)
	if _, err := se.SearchTerms([]string{"x"}, 0, SearchOptions{Diameter: 2}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: err = %v", err)
	}
}
