package cirank

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"cirank/internal/datagen"
)

// shardFixture builds a generated DBLP engine plus a query workload through
// the public builder — large enough that partitions at count 4 are
// non-trivial, small enough for the race detector.
func shardFixture(t testing.TB) (*Engine, [][]string) {
	t.Helper()
	ds, err := datagen.GenerateDBLP(datagen.DefaultDBLPConfig(7).Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	b := NewDBLPBuilder()
	if err := ds.Replay(b.InsertEntity, b.Relate); err != nil {
		t.Fatal(err)
	}
	eng, err := b.Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	built, err := datagen.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := built.GenerateWorkload(datagen.UserLogConfig(16, 11))
	if err != nil {
		t.Fatal(err)
	}
	terms := make([][]string, len(queries))
	for i, q := range queries {
		terms[i] = q.Terms
	}
	return eng, terms
}

// sameResults demands bitwise-equal rankings: same order, bit-equal scores,
// identical rows and edges.
func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: result %d score %.17g, want %.17g", label, i, got[i].Score, want[i].Score)
		}
		if len(got[i].Rows) != len(want[i].Rows) || len(got[i].Edges) != len(want[i].Edges) {
			t.Fatalf("%s: result %d shape differs", label, i)
		}
		for j := range got[i].Rows {
			if got[i].Rows[j] != want[i].Rows[j] {
				t.Fatalf("%s: result %d row %d differs: %+v vs %+v",
					label, i, j, got[i].Rows[j], want[i].Rows[j])
			}
		}
		for j := range got[i].Edges {
			if got[i].Edges[j] != want[i].Edges[j] {
				t.Fatalf("%s: result %d edge %d differs", label, i, j)
			}
		}
	}
}

func TestShardedByteIdentity(t *testing.T) {
	eng, queries := shardFixture(t)
	for _, count := range []int{1, 2, 4} {
		shards, err := ShardEngines(eng, count, 0)
		if err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		se, err := NewSharded(shards)
		if err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		if se.NumNodes() != eng.NumNodes() || se.NumEdges() != eng.NumEdges() {
			t.Fatalf("count %d: coordinator reports %d/%d, engine has %d/%d",
				count, se.NumNodes(), se.NumEdges(), eng.NumNodes(), eng.NumEdges())
		}
		for qi, terms := range queries {
			want, err := eng.SearchTerms(terms, 5, SearchOptions{})
			if err != nil {
				t.Fatalf("query %d: single-engine: %v", qi, err)
			}
			got, err := se.SearchTerms(terms, 5, SearchOptions{})
			if err != nil {
				t.Fatalf("count %d query %d: %v", count, qi, err)
			}
			sameResults(t, "sharded", got, want)
		}
	}
}

func TestShardedTermSelectivity(t *testing.T) {
	eng, queries := shardFixture(t)
	shards, err := ShardEngines(eng, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, terms := range queries {
		for _, term := range terms {
			if got, want := se.TermSelectivity(term), eng.TermSelectivity(term); got != want {
				t.Fatalf("TermSelectivity(%q) = %d sharded, %d single-engine", term, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no terms checked")
	}
	if se.TermSelectivity("nosuchterm") != 0 {
		t.Error("unknown term has nonzero selectivity")
	}
}

func TestShardSnapshotRoundTrip(t *testing.T) {
	eng, queries := shardFixture(t)
	shards, err := ShardEngines(eng, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := shards[1].ShardInfo()
	if !ok || info.Index != 1 || info.Count != 2 || info.Radius != DefaultShardRadius {
		t.Fatalf("ShardInfo = %+v, %v", info, ok)
	}
	if info.TotalNodes != eng.NumNodes() || info.TotalEdges != eng.NumEdges() {
		t.Fatalf("ShardInfo totals %d/%d, want %d/%d",
			info.TotalNodes, info.TotalEdges, eng.NumNodes(), eng.NumEdges())
	}
	if _, ok := eng.ShardInfo(); ok {
		t.Fatal("unpartitioned engine claims a shard slice")
	}

	base := filepath.Join(t.TempDir(), "snap")
	if err := SaveShardSet(shards, base); err != nil {
		t.Fatal(err)
	}
	se, err := OpenShardSet(base)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	if se.NumShards() != 2 || se.Radius() != DefaultShardRadius {
		t.Fatalf("reopened set: %d shards radius %d", se.NumShards(), se.Radius())
	}
	for qi, terms := range queries[:4] {
		want, err := eng.SearchTerms(terms, 5, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := se.SearchTerms(terms, 5, SearchOptions{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameResults(t, "reopened sharded", got, want)
	}
	// Missing member: shard 1's file gone.
	if err := SaveShardSet(shards, filepath.Join(t.TempDir(), "gone")); err != nil {
		t.Fatal(err)
	}
}

func TestShardedValidation(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	shards, err := ShardEngines(eng, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-sharding a shard engine is rejected.
	if _, err := ShardEngines(shards[0], 2, 1); !errors.Is(err, ErrShardSet) {
		t.Errorf("re-sharding a shard: err = %v", err)
	}
	// Out-of-order set.
	if _, err := NewSharded([]*Engine{shards[1], shards[0]}); !errors.Is(err, ErrShardSet) {
		t.Errorf("out-of-order set: err = %v", err)
	}
	// Incomplete set.
	if _, err := NewSharded(shards[:1]); !errors.Is(err, ErrShardSet) {
		t.Errorf("incomplete set: err = %v", err)
	}
	// Non-shard engine.
	if _, err := NewSharded([]*Engine{eng}); !errors.Is(err, ErrShardSet) {
		t.Errorf("plain engine: err = %v", err)
	}
	se, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	// Radius 1 certifies diameters up to 2; the default 4 must be rejected.
	if _, err := se.Search("ullman", 3); !errors.Is(err, ErrBadOptions) {
		t.Errorf("over-horizon diameter: err = %v", err)
	}
	res, err := se.SearchTerms([]string{"tsimmis"}, 3, SearchOptions{Diameter: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.SearchTerms([]string{"tsimmis"}, 3, SearchOptions{Diameter: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "radius-1 set", res, want)
	if _, err := se.SearchTerms([]string{"x"}, 0, SearchOptions{Diameter: 2}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: err = %v", err)
	}
}
