package cirank

import (
	"fmt"
	"strings"
	"time"
)

// StageStats describes one stage of the offline build pipeline.
type StageStats struct {
	// Duration is the stage's wall-clock time. Stages that ran concurrently
	// with others (see BuildStats) overlap, so stage durations can sum to
	// more than BuildStats.Total.
	Duration time.Duration
	// Workers is the number of goroutines the stage fanned its work across
	// (1 for inherently sequential stages).
	Workers int
	// Items is the number of units the stage processed — graph nodes for
	// the index stages, tuples for graph construction.
	Items int
}

// Rate reports the stage's throughput in items per second (0 when the
// duration is too small to measure).
func (s StageStats) Rate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Items) / s.Duration.Seconds()
}

// String renders the stage as "12.3ms (4 workers, 81300 items/s)".
func (s StageStats) String() string {
	return fmt.Sprintf("%v (%d workers, %.0f items/s)", s.Duration.Round(time.Microsecond), s.Workers, s.Rate())
}

// IndexMemStats describes the memory held by the engine's path index, so
// the naive-vs-star size comparison of §V can be read off a startup log.
type IndexMemStats struct {
	// Kind is "star" when the §V-B index was built, or "none" when indexing
	// is disabled or the schema's star tables do not cover every
	// relationship.
	Kind string
	// StarNodes is the number of indexed star nodes (0 when Kind is "none").
	StarNodes int
	// Entries is the number of stored (source, target) statistic pairs.
	Entries int
	// Bytes estimates the heap bytes held by the index's tables.
	Bytes int64
}

// String renders the index footprint as "star: 120 nodes, 14400 entries, 0.1 MiB".
func (m IndexMemStats) String() string {
	if m.Kind == "" || m.Kind == "none" {
		return "none"
	}
	return fmt.Sprintf("%s: %d nodes, %d entries, %.1f MiB", m.Kind, m.StarNodes, m.Entries, float64(m.Bytes)/(1<<20))
}

// Engine data provenance values reported in BuildStats.Source.
const (
	// SourceBuild marks an engine assembled by the offline build pipeline
	// (Builder.Build / BuildContext): every stage actually ran.
	SourceBuild = "build"
	// SourceStream marks an engine decoded from an io.Reader snapshot
	// (LoadEngine); all arrays were copied off the stream and the expensive
	// build stages were skipped.
	SourceStream = "stream"
	// SourceMmap marks an engine opened from a memory-mapped snapshot file
	// (Open); flat arrays alias the mapping zero-copy where the platform
	// allows and the expensive build stages were skipped.
	SourceMmap = "mmap"
)

// BuildStats reports what the offline build pipeline did: per-stage
// wall-clock durations, fan-out and throughput, plus the path index's
// memory footprint. Builder.BuildContext runs the text-index stage
// concurrently with the PageRank → path-index chain, so TextIndex overlaps
// PageRank and PathIndex in wall-clock terms. Engines loaded from a
// snapshot report zero stage timings with Source saying how the data
// arrived instead.
type BuildStats struct {
	// Source records where the engine's data came from: SourceBuild,
	// SourceStream or SourceMmap. Loaded engines keep every stage at zero —
	// the point of a snapshot is that PageRank, the star index and the text
	// index are read back, not recomputed.
	Source string
	// Total is the wall-clock time of the whole build.
	Total time.Duration
	// Workers is the resolved worker count shared by the parallel stages
	// (Config.Workers, with 0 resolved to the CPU count).
	Workers int
	// Graph covers relational graph construction (tuples + links → CSR).
	Graph StageStats
	// TextIndex covers the sharded inverted-index build.
	TextIndex StageStats
	// PageRank covers the importance power iteration (sequential, so
	// importance values never depend on the worker count).
	PageRank StageStats
	// PathIndex covers the §V star-index construction (zero when indexing
	// is disabled).
	PathIndex StageStats
	// PathIndexMem describes the built path index's memory footprint.
	PathIndexMem IndexMemStats
}

// String renders a one-line-per-stage summary suitable for startup logs.
func (b BuildStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %v, %d workers", b.Total.Round(time.Microsecond), b.Workers)
	fmt.Fprintf(&sb, " | graph %v", b.Graph)
	fmt.Fprintf(&sb, " | text %v", b.TextIndex)
	fmt.Fprintf(&sb, " | pagerank %v", b.PageRank)
	if b.PathIndexMem.Kind == "star" {
		fmt.Fprintf(&sb, " | pathindex %v [%v]", b.PathIndex, b.PathIndexMem)
	} else {
		sb.WriteString(" | pathindex none")
	}
	return sb.String()
}
