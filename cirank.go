// Package cirank implements CI-Rank — ranking keyword search results over
// relational data by their collective importance (Yu & Shi, ICDE 2012).
//
// CI-Rank models a database as a weighted directed graph (tuples are nodes,
// foreign-key references are edge pairs), computes global node importance
// with a random walk, and ranks the joined tuple trees answering a keyword
// query with the Random Walk with Message Passing (RWMP) model: answers are
// scored by how many messages their keyword nodes exchange, so both the
// importance of every node in the answer — including the free "connector"
// nodes IR-style rankers ignore — and the cohesiveness of the answer's
// structure matter.
//
// Typical usage:
//
//	b := cirank.NewDBLPBuilder()
//	b.MustInsert("Author", "a1", "Yannis Papakonstantinou")
//	b.MustInsert("Author", "a2", "Jeffrey Ullman")
//	b.MustInsert("Paper", "p1", "The TSIMMIS Project")
//	b.MustRelate("written_by", "p1", "a1")
//	b.MustRelate("written_by", "p1", "a2")
//	eng, err := b.Build(cirank.DefaultConfig())
//	// ...
//	results, err := eng.Search("papakonstantinou ullman", 5)
//
// The packages under internal/ hold the building blocks (graph substrate,
// text index, PageRank, the RWMP model, the search algorithms, the path
// indexes, the baselines and the experiment harness); this package is the
// stable public surface.
package cirank

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cirank/internal/graph"
	"cirank/internal/jtt"
	"cirank/internal/pagerank"
	"cirank/internal/pathindex"
	"cirank/internal/relational"
	"cirank/internal/rwmp"
	"cirank/internal/search"
	"cirank/internal/textindex"
)

// Config controls engine construction. Start from DefaultConfig and adjust:
// Alpha and Teleport have no zero sentinel — Build rejects 0 (and any
// out-of-range value) with ErrBadConfig instead of guessing what was meant.
// The remaining fields keep documented zero sentinels: Group 0 means the
// paper's 20, IndexDepth 0 disables indexing, FeedbackMix 0 disables
// feedback biasing, Workers 0 means one worker per CPU, and CacheSize 0
// means the default cache capacities.
type Config struct {
	// Alpha is the message-keeping probability of the dampening function,
	// in (0, 1]. DefaultConfig sets the paper's operating point, 0.15.
	// There is no zero sentinel: an explicit 0 is rejected at Build.
	Alpha float64
	// Group is the talk group size g of the dampening function
	// (0 means the paper's default, 20).
	Group float64
	// Teleport is the random-walk teleportation constant c, in (0, 1).
	// DefaultConfig sets the paper's 0.15. There is no zero sentinel: an
	// explicit 0 is rejected at Build.
	Teleport float64
	// IndexDepth, when positive, builds the §V-B star index with the given
	// horizon, which speeds up searches whose diameter limit is at most
	// this depth. 0 disables indexing.
	IndexDepth int
	// FeedbackMix routes this fraction of teleport mass through recorded
	// feedback (Builder.AddFeedback), biasing importance toward nodes
	// users clicked — the paper's user-preference adaptation (§VI-A,
	// §VIII). 0 disables feedback biasing even if feedback was recorded.
	FeedbackMix float64
	// Workers is the single worker count shared by the offline build
	// pipeline (text index and path index sharding, see
	// Builder.BuildContext) and the online per-query fan-out (candidate
	// tree evaluation). 0 means auto — one worker per available CPU
	// (GOMAXPROCS), resolved once at build time; 1 forces the sequential
	// paths; negative values are rejected with ErrBadConfig. Both the
	// built indexes and the ranked results are identical for every worker
	// count (certified by the determinism suites); only throughput
	// changes.
	Workers int
	// CacheSize bounds the engine's two query-path memo caches: the RWMP
	// score cache (entries keyed by canonical tree + query, shared across
	// queries) and the path-index bound cache (entries keyed by node
	// pair). 0 means the defaults (rwmp.DefaultScoreCacheSize and
	// pathindex.DefaultBoundCacheSize); a negative value disables both
	// caches. Cache hits are provably equivalent to recomputation, so
	// results never depend on this knob.
	CacheSize int
}

// DefaultConfig returns the paper's configuration with a star index deep
// enough for the evaluated diameters (D ≤ 6).
func DefaultConfig() Config {
	return Config{Alpha: 0.15, Group: 20, Teleport: 0.15, IndexDepth: 6}
}

// withDefaults validates the config and fills the documented zero
// sentinels. Alpha and Teleport deliberately have none: a zero there is
// almost always a forgotten field, and silently rewriting it to the paper
// default used to mask the bug, so it is now rejected with ErrBadConfig.
func (c Config) withDefaults() (Config, error) {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return c, fmt.Errorf("%w: Alpha must be in (0, 1], got %g (start from DefaultConfig for the paper's 0.15; an explicit 0 is not rewritten)", ErrBadConfig, c.Alpha)
	}
	if c.Teleport <= 0 || c.Teleport >= 1 {
		return c, fmt.Errorf("%w: Teleport must be in (0, 1), got %g (start from DefaultConfig for the paper's 0.15; an explicit 0 is not rewritten)", ErrBadConfig, c.Teleport)
	}
	if c.Group < 0 {
		return c, fmt.Errorf("%w: negative Group %g", ErrBadConfig, c.Group)
	}
	if c.Group == 0 {
		c.Group = 20
	}
	if c.IndexDepth < 0 {
		return c, fmt.Errorf("%w: negative IndexDepth %d", ErrBadConfig, c.IndexDepth)
	}
	if c.FeedbackMix < 0 || c.FeedbackMix > 1 {
		return c, fmt.Errorf("%w: FeedbackMix must be in [0, 1], got %g", ErrBadConfig, c.FeedbackMix)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("%w: negative Workers %d", ErrBadConfig, c.Workers)
	}
	return c, nil
}

// SearchOptions tune one query.
type SearchOptions struct {
	// Diameter is the maximal answer-tree diameter D (default 4).
	Diameter int
	// MaxExpansions caps branch-and-bound work (default 200000; 0 keeps
	// the default, -1 removes the cap).
	MaxExpansions int
	// DisableIndex stops the engine's star index (if built) from assisting
	// this search; by default an index is used whenever it exists and its
	// horizon covers the diameter.
	DisableIndex bool
	// Workers overrides the engine's Config.Workers for this query:
	// 0 keeps the engine setting, 1 forces the sequential path, higher
	// values set the evaluation fan-out. Rankings are identical for every
	// worker count; only throughput changes. Negative values are rejected
	// with ErrBadOptions.
	Workers int
	// ExtendedMerge admits candidate-tree merges that add non-free nodes
	// without covering new keywords, restoring full completeness for
	// answers with three or more same-keyword subtrees under one root at
	// (worst-case exponential) extra cost. The default follows the paper's
	// §IV-B merge rule. See search.Options.ExtendedMerge.
	ExtendedMerge bool
	// DisableFrontierPrune stops a shard engine from pruning candidate
	// trees centered far from its owned node set. By default a shard
	// engine (see ShardEngines) explores only trees whose root lies within
	// ⌈Diameter/2⌉ hops of ownership — exactly the trees whose answers it
	// is responsible for in a scatter-gather set — which is what makes
	// sharding cheaper than a whole-graph search. Disabling the prune
	// makes the shard return every answer its halo-widened subgraph holds
	// (the pre-prune behaviour); merged rankings through ShardedEngine are
	// byte-identical either way. Non-shard engines ignore the flag.
	DisableFrontierPrune bool
}

// Row is one tuple of a search result.
type Row struct {
	Table string
	Key   string
	Text  string
	// Matched reports whether this tuple matches at least one query term
	// (a non-free node).
	Matched bool
}

// Result is one ranked answer: a joined tuple tree.
type Result struct {
	Score float64
	// Rows are the answer's tuples; Rows[0] is the tree root.
	Rows []Row
	// Edges are the tree edges as index pairs into Rows (child, parent).
	Edges [][2]int

	// tree and nodes (parallel to Rows) let Explain recompute the answer's
	// message flows.
	tree  *jtt.Tree
	nodes []graph.NodeID
}

// Engine is an immutable, query-ready CI-Rank instance. It is safe for
// concurrent use: any number of goroutines may call Search and the other
// query methods simultaneously (the shared score and bound caches are
// internally synchronized).
type Engine struct {
	g        *graph.Graph
	ix       *textindex.Index
	model    *rwmp.Model
	searcher *search.Searcher
	starIdx  *pathindex.StarIndex
	imp      []float64
	lookup   lookupFunc
	workers  int
	// mapEntries is the complete (table, key) → node mapping, including
	// every merged-away role key. Snapshots persist it so Importance keeps
	// resolving merged keys after a reload.
	mapEntries []relational.MappingEntry
	// scores and cachedIdx are the engine-lifetime memo caches (nil when
	// Config.CacheSize < 0).
	scores    *rwmp.ScoreCache
	cachedIdx *pathindex.CachedIndex
	// buildStats records what the offline build pipeline did. Engines
	// loaded from a snapshot report zero stage timings with Source set to
	// how the data arrived (stream decode or mmap open).
	buildStats BuildStats
	// shard is non-nil when this engine serves one shard of a partitioned
	// set (see ShardEngines); it records the engine's slice of the plan.
	shard *shardMeta
	// ownedDist maps every node to its hop distance from the shard's owned
	// set over the shard subgraph, cut off at the plan radius (-1 beyond).
	// It powers the frontier prune; nil for non-shard engines. Derived
	// data: recomputed from the owned set at load rather than persisted.
	ownedDist []int32
	// closer releases the snapshot mapping backing a zero-copy engine
	// (nil otherwise); closeOnce makes Close idempotent.
	closer    func() error
	closeOnce sync.Once
}

// Close releases the resources backing the engine — for engines returned by
// Open, the snapshot file's memory mapping. It must not be called while
// queries are in flight: a zero-copy engine reads the mapped file on every
// search, and unmapping under a live query is a crash, not an error. Close
// is idempotent and safe for concurrent use; engines built in process or
// loaded from an io.Reader hold no external resources, so their Close is a
// no-op returning nil.
func (e *Engine) Close() error {
	var err error
	e.closeOnce.Do(func() {
		if e.closer != nil {
			err = e.closer()
		}
	})
	return err
}

// BuildStats reports the offline build pipeline's per-stage wall-clock
// timings, fan-out and path-index memory footprint. Engines loaded from a
// snapshot report zero stage timings — their expensive stages were skipped
// entirely — with Source recording how the data arrived.
func (e *Engine) BuildStats() BuildStats { return e.buildStats }

// CacheStats reports cumulative hit/miss counts of the engine's query-path
// caches, for capacity tuning and observability.
type CacheStats struct {
	ScoreHits, ScoreMisses int64
	BoundHits, BoundMisses int64
}

// CacheStats returns the engine's cache counters since construction. All
// zeros when caching is disabled (Config.CacheSize < 0).
func (e *Engine) CacheStats() CacheStats {
	var cs CacheStats
	if e.scores != nil {
		cs.ScoreHits, cs.ScoreMisses = e.scores.Stats()
	}
	if e.cachedIdx != nil {
		cs.BoundHits, cs.BoundMisses = e.cachedIdx.Stats()
	}
	return cs
}

// TermSelectivity reports how many graph nodes' text contains term (the
// term's total posting-list length, case-insensitively). It is the
// selectivity signal the serving layer's cost-based admission uses: the sum
// over a query's terms bounds the candidate-root set branch-and-bound must
// consider, so it is a cheap, index-only proxy for the work a query will do
// before any of that work happens. Unknown terms report 0.
func (e *Engine) TermSelectivity(term string) int {
	return e.ix.DFTotal(term)
}

// SearchStats reports the work one query did, for observability and the
// serving layer's per-query diagnostics.
type SearchStats struct {
	// Expanded counts candidate trees popped and expanded by the
	// branch-and-bound loop.
	Expanded int
	// Generated counts candidate trees created (after dedup).
	Generated int
	// Answers counts complete valid answers encountered before top-k
	// truncation.
	Answers int
	// Truncated reports that the MaxExpansions cap stopped the search
	// early; the results are the best found up to the cap.
	Truncated bool
	// Interrupted reports that the context expired or was cancelled
	// mid-search; the results are the best found up to that point.
	Interrupted bool
	// FrontierBound is the best Eq. 3 upper bound left in the search
	// frontier when the query stopped: every answer the search did not
	// return either scores strictly below the k-th returned answer or is
	// bounded by this value. 0 when the frontier was exhausted, +Inf when
	// no finite bound exists (the query was interrupted or candidates were
	// dropped at the expansion cap). Scatter-gather coordination uses it to
	// certify a truncated shard's result against the merged global top-k.
	FrontierBound float64
	// Elapsed is the query's wall-clock time inside the engine.
	Elapsed time.Duration
}

// Partial reports whether the query stopped before exhausting its search
// frontier (by cap or cancellation), so the ranking carries no optimality
// guarantee.
func (s SearchStats) Partial() bool { return s.Truncated || s.Interrupted }

// SearchResult is a ranked answer list together with the query's stats.
type SearchResult struct {
	// Results are the ranked answers, best first.
	Results []Result
	// Stats describes the work done to produce them.
	Stats SearchStats
}

// Search tokenizes the query string and returns the top-k answers. AND
// semantics apply: every answer covers all query words; a query word with
// no matching tuple yields no answers. Search is uncancellable and discards
// the query stats; SearchContext is the full-fidelity form.
func (e *Engine) Search(query string, k int) ([]Result, error) {
	res, err := e.SearchContext(context.Background(), query, k)
	return res.Results, err
}

// SearchContext tokenizes the query string and runs it under ctx with
// default options. See SearchTermsContext for the cancellation contract.
func (e *Engine) SearchContext(ctx context.Context, query string, k int) (SearchResult, error) {
	return e.SearchTermsContext(ctx, textindex.Tokenize(query), k, SearchOptions{})
}

// SearchTerms runs a query given pre-split terms and explicit options. It
// is uncancellable and discards the query stats; SearchTermsContext is the
// full-fidelity form.
func (e *Engine) SearchTerms(terms []string, k int, opts SearchOptions) ([]Result, error) {
	res, err := e.SearchTermsContext(context.Background(), terms, k, opts)
	return res.Results, err
}

// searchOptions validates k and opts and resolves them into internal search
// options: documented defaults filled, the engine's score cache attached, and
// the star index selected when it exists and covers the diameter. Shared by
// the single-engine query path and the per-shard scatter legs of
// ShardedEngine, so both resolve a request identically.
func (e *Engine) searchOptions(k int, opts SearchOptions) (search.Options, error) {
	if k < 1 {
		return search.Options{}, fmt.Errorf("%w (got %d)", ErrBadK, k)
	}
	workers := e.workers
	switch {
	case opts.Workers < 0:
		return search.Options{}, fmt.Errorf("%w: negative Workers %d", ErrBadOptions, opts.Workers)
	case opts.Workers > 0:
		workers = opts.Workers
	}
	if opts.MaxExpansions < -1 {
		return search.Options{}, fmt.Errorf("%w: MaxExpansions %d (use -1 to remove the cap)", ErrBadOptions, opts.MaxExpansions)
	}
	sopts := search.Options{
		K:             k,
		Diameter:      opts.Diameter,
		MaxExpansions: opts.MaxExpansions,
		Workers:       workers,
		ExtendedMerge: opts.ExtendedMerge,
		Scores:        e.scores,
	}
	if sopts.Diameter == 0 {
		sopts.Diameter = 4
	}
	switch {
	case sopts.MaxExpansions == 0:
		sopts.MaxExpansions = 200000
	case sopts.MaxExpansions < 0:
		sopts.MaxExpansions = 0
	}
	if e.starIdx != nil && !opts.DisableIndex && sopts.Diameter <= e.starIdx.MaxDepth() {
		if e.cachedIdx != nil {
			sopts.Index = e.cachedIdx
		} else {
			sopts.Index = e.starIdx
		}
	}
	// A shard engine defaults to the frontier prune, but only while the
	// diameter stays inside the exactness horizon its ownedDist table was
	// built for (the plan radius bounds both the halo and the distance
	// cut-off); beyond it the shard already can't answer exactly and the
	// prune must not silently narrow things further.
	if e.ownedDist != nil && e.shard != nil && !opts.DisableFrontierPrune &&
		sopts.Diameter <= 2*e.shard.Radius {
		sopts.OwnedDist = e.ownedDist
	}
	return sopts, nil
}

// SearchTermsContext runs a query given pre-split terms and explicit
// options, bounded by ctx. A context that is already done on entry yields
// an error wrapping ErrDeadline (and the context's own error) with no work
// done; a context that expires mid-search stops the query promptly at its
// next cancellation point and returns the best answers found so far with
// Stats.Interrupted set and a nil error. When the context never fires the
// ranking is byte-identical to SearchTerms for every Workers setting.
// Invalid arguments are reported through the sentinel errors ErrBadK,
// ErrEmptyQuery and ErrBadOptions.
func (e *Engine) SearchTermsContext(ctx context.Context, terms []string, k int, opts SearchOptions) (SearchResult, error) {
	sopts, err := e.searchOptions(k, opts)
	if err != nil {
		return SearchResult{}, err
	}
	start := time.Now()
	answers, stats, err := e.searcher.TopKContext(ctx, terms, sopts)
	if err != nil {
		return SearchResult{}, err
	}
	res := SearchResult{
		Results: make([]Result, len(answers)),
		Stats: SearchStats{
			Expanded:      stats.Expanded,
			Generated:     stats.Generated,
			Answers:       stats.Answers,
			Truncated:     stats.Truncated,
			Interrupted:   stats.Interrupted,
			FrontierBound: stats.FrontierBound,
			Elapsed:       time.Since(start),
		},
	}
	for i, a := range answers {
		res.Results[i] = e.result(a, terms)
	}
	return res, nil
}

// result converts a search answer to the public form.
func (e *Engine) result(a search.Answer, terms []string) Result {
	nodes := a.Tree.Nodes()
	// Root first, rest in ascending order.
	ordered := make([]graph.NodeID, 0, len(nodes))
	ordered = append(ordered, a.Tree.Root())
	for _, v := range nodes {
		if v != a.Tree.Root() {
			ordered = append(ordered, v)
		}
	}
	indexOf := make(map[graph.NodeID]int, len(ordered))
	res := Result{Score: a.Score, tree: a.Tree, nodes: ordered}
	for i, v := range ordered {
		indexOf[v] = i
		n := e.g.Node(v)
		res.Rows = append(res.Rows, Row{
			Table:   n.Relation,
			Key:     n.Key,
			Text:    n.Text,
			Matched: e.ix.QueryMatchCount(v, terms) > 0,
		})
	}
	for _, edge := range a.Tree.Edges() {
		res.Edges = append(res.Edges, [2]int{indexOf[edge.Child], indexOf[edge.Parent]})
	}
	return res
}

// Importance returns the global importance value of the tuple (table, key),
// and whether the tuple exists. Useful for diagnostics and feedback tools.
func (e *Engine) Importance(table, key string) (float64, bool) {
	id, ok := e.mappingLookup(table, key)
	if !ok {
		return 0, false
	}
	return e.imp[id], true
}

// NumNodes reports the size of the engine's data graph.
func (e *Engine) NumNodes() int { return e.g.NumNodes() }

// NumEdges reports the number of directed edges in the data graph.
func (e *Engine) NumEdges() int { return e.g.NumEdges() }

func (e *Engine) mappingLookup(table, key string) (graph.NodeID, bool) {
	if e.lookup == nil {
		return 0, false
	}
	return e.lookup(table, key)
}

// lookup resolves tuples to nodes; injected by Builder.Build.
type lookupFunc func(table, key string) (graph.NodeID, bool)

// buildCancelled wraps a context error so callers can errors.Is it against
// context.Canceled / context.DeadlineExceeded.
func buildCancelled(err error) error {
	return fmt.Errorf("cirank: build cancelled: %w", err)
}

// buildEngine assembles an Engine from prepared parts, running the offline
// pipeline as a stage DAG under ctx. After graph construction (done by the
// caller), the text index and the importance chain (PageRank → dampening
// rates → §V star index) have no data dependency on one another, so they
// run concurrently; the parallel stages fan out internally across the
// resolved worker count. PageRank itself stays sequential so importance
// values — and with them every downstream score — never depend on the
// machine's CPU count. Per-stage timings accumulate into stats.
func buildEngine(ctx context.Context, g *graph.Graph, mp *relational.Mapping, isStar []bool, cfg Config, feedback map[graph.NodeID]float64, stats *BuildStats) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats.Workers = workers
	params := rwmp.Params{Alpha: cfg.Alpha, Group: cfg.Group}

	var (
		ix    *textindex.Index
		ixErr error
		done  = make(chan struct{})
	)
	go func() {
		defer close(done)
		t0 := time.Now()
		ix, ixErr = textindex.BuildContext(ctx, g, workers)
		stats.TextIndex = StageStats{Duration: time.Since(t0), Workers: workers, Items: g.NumNodes()}
	}()

	// Importance chain, on this goroutine while the text index builds.
	var (
		imp     []float64
		starIdx *pathindex.StarIndex
	)
	chainErr := func() error {
		prOpts := pagerank.DefaultOptions()
		prOpts.Teleport = cfg.Teleport
		if cfg.FeedbackMix > 0 && len(feedback) > 0 {
			prOpts.Personalization = feedback
			prOpts.PersonalizationMix = cfg.FeedbackMix
		}
		t0 := time.Now()
		pr, err := pagerank.Compute(g, prOpts)
		if err != nil {
			return err
		}
		stats.PageRank = StageStats{Duration: time.Since(t0), Workers: 1, Items: g.NumNodes()}
		imp = pr.Scores
		if err := ctx.Err(); err != nil {
			return buildCancelled(err)
		}
		stats.PathIndexMem = IndexMemStats{Kind: "none"}
		if cfg.IndexDepth > 0 {
			damp, err := rwmp.DampRates(imp, params)
			if err != nil {
				return err
			}
			t0 = time.Now()
			idx, err := pathindex.BuildStarContext(ctx, g, damp, isStar, cfg.IndexDepth, workers)
			switch {
			case err == nil:
				starIdx = idx
				stats.PathIndex = StageStats{Duration: time.Since(t0), Workers: workers, Items: g.NumNodes()}
				ms := idx.MemStats()
				stats.PathIndexMem = IndexMemStats{Kind: "star", StarNodes: idx.NumStarNodes(), Entries: ms.Entries, Bytes: ms.Bytes}
			case ctx.Err() != nil:
				return buildCancelled(ctx.Err())
			default:
				// Star indexing requires the star tables to cover every
				// relationship; fall back to unindexed search for schemas
				// where they don't.
				starIdx = nil
			}
		}
		return nil
	}()
	<-done
	if chainErr != nil {
		return nil, chainErr
	}
	if ixErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, buildCancelled(err)
		}
		return nil, ixErr
	}
	if err := ctx.Err(); err != nil {
		return nil, buildCancelled(err)
	}
	model, err := rwmp.New(g, ix, imp, params)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:          g,
		ix:         ix,
		model:      model,
		searcher:   search.New(model),
		imp:        imp,
		lookup:     func(table, key string) (graph.NodeID, bool) { return mp.NodeOf(table, key) },
		workers:    workers,
		starIdx:    starIdx,
		mapEntries: mp.Entries(),
	}
	stats.Source = SourceBuild
	if cfg.CacheSize >= 0 {
		e.scores = rwmp.NewScoreCache(model, cfg.CacheSize)
		if starIdx != nil {
			e.cachedIdx = pathindex.NewCached(starIdx, cfg.CacheSize)
		}
	}
	return e, nil
}
