// Package cirank implements CI-Rank — ranking keyword search results over
// relational data by their collective importance (Yu & Shi, ICDE 2012).
//
// CI-Rank models a database as a weighted directed graph (tuples are nodes,
// foreign-key references are edge pairs), computes global node importance
// with a random walk, and ranks the joined tuple trees answering a keyword
// query with the Random Walk with Message Passing (RWMP) model: answers are
// scored by how many messages their keyword nodes exchange, so both the
// importance of every node in the answer — including the free "connector"
// nodes IR-style rankers ignore — and the cohesiveness of the answer's
// structure matter.
//
// Typical usage:
//
//	b := cirank.NewDBLPBuilder()
//	b.MustInsert("Author", "a1", "Yannis Papakonstantinou")
//	b.MustInsert("Author", "a2", "Jeffrey Ullman")
//	b.MustInsert("Paper", "p1", "The TSIMMIS Project")
//	b.MustRelate("written_by", "p1", "a1")
//	b.MustRelate("written_by", "p1", "a2")
//	eng, err := b.Build(cirank.DefaultConfig())
//	// ...
//	results, err := eng.Search("papakonstantinou ullman", 5)
//
// The packages under internal/ hold the building blocks (graph substrate,
// text index, PageRank, the RWMP model, the search algorithms, the path
// indexes, the baselines and the experiment harness); this package is the
// stable public surface.
package cirank

import (
	"fmt"

	"cirank/internal/graph"
	"cirank/internal/jtt"
	"cirank/internal/pagerank"
	"cirank/internal/pathindex"
	"cirank/internal/relational"
	"cirank/internal/rwmp"
	"cirank/internal/search"
	"cirank/internal/textindex"
)

// Config controls engine construction. Zero values take the paper's
// defaults where one exists.
type Config struct {
	// Alpha is the message-keeping probability of the dampening function
	// (default 0.15, the paper's chosen operating point).
	Alpha float64
	// Group is the talk group size g of the dampening function
	// (default 20).
	Group float64
	// Teleport is the random-walk teleportation constant c (default 0.15).
	Teleport float64
	// IndexDepth, when positive, builds the §V-B star index with the given
	// horizon, which speeds up searches whose diameter limit is at most
	// this depth. 0 disables indexing.
	IndexDepth int
	// FeedbackMix routes this fraction of teleport mass through recorded
	// feedback (Builder.AddFeedback), biasing importance toward nodes
	// users clicked — the paper's user-preference adaptation (§VI-A,
	// §VIII). 0 disables feedback biasing even if feedback was recorded.
	FeedbackMix float64
	// Workers sets how many goroutines each query fans candidate-tree
	// evaluation (RWMP scoring and branch-and-bound bounds) across.
	// 0 means auto — one worker per available CPU (GOMAXPROCS); 1 forces
	// the sequential path. The ranked results are identical for every
	// worker count (certified by the determinism tests); only throughput
	// changes.
	Workers int
	// CacheSize bounds the engine's two query-path memo caches: the RWMP
	// score cache (entries keyed by canonical tree + query, shared across
	// queries) and the path-index bound cache (entries keyed by node
	// pair). 0 means the defaults (rwmp.DefaultScoreCacheSize and
	// pathindex.DefaultBoundCacheSize); a negative value disables both
	// caches. Cache hits are provably equivalent to recomputation, so
	// results never depend on this knob.
	CacheSize int
}

// DefaultConfig returns the paper's configuration with a star index deep
// enough for the evaluated diameters (D ≤ 6).
func DefaultConfig() Config {
	return Config{Alpha: 0.15, Group: 20, Teleport: 0.15, IndexDepth: 6}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Group == 0 {
		c.Group = 20
	}
	if c.Teleport == 0 {
		c.Teleport = 0.15
	}
	return c
}

// SearchOptions tune one query.
type SearchOptions struct {
	// Diameter is the maximal answer-tree diameter D (default 4).
	Diameter int
	// MaxExpansions caps branch-and-bound work (default 200000; 0 keeps
	// the default, -1 removes the cap).
	MaxExpansions int
	// DisableIndex stops the engine's star index (if built) from assisting
	// this search; by default an index is used whenever it exists and its
	// horizon covers the diameter.
	DisableIndex bool
}

// Row is one tuple of a search result.
type Row struct {
	Table string
	Key   string
	Text  string
	// Matched reports whether this tuple matches at least one query term
	// (a non-free node).
	Matched bool
}

// Result is one ranked answer: a joined tuple tree.
type Result struct {
	Score float64
	// Rows are the answer's tuples; Rows[0] is the tree root.
	Rows []Row
	// Edges are the tree edges as index pairs into Rows (child, parent).
	Edges [][2]int

	// tree and nodes (parallel to Rows) let Explain recompute the answer's
	// message flows.
	tree  *jtt.Tree
	nodes []graph.NodeID
}

// Engine is an immutable, query-ready CI-Rank instance. It is safe for
// concurrent use: any number of goroutines may call Search and the other
// query methods simultaneously (the shared score and bound caches are
// internally synchronized).
type Engine struct {
	g        *graph.Graph
	ix       *textindex.Index
	model    *rwmp.Model
	searcher *search.Searcher
	starIdx  *pathindex.StarIndex
	imp      []float64
	lookup   lookupFunc
	workers  int
	// scores and cachedIdx are the engine-lifetime memo caches (nil when
	// Config.CacheSize < 0).
	scores    *rwmp.ScoreCache
	cachedIdx *pathindex.CachedIndex
}

// CacheStats reports cumulative hit/miss counts of the engine's query-path
// caches, for capacity tuning and observability.
type CacheStats struct {
	ScoreHits, ScoreMisses int64
	BoundHits, BoundMisses int64
}

// CacheStats returns the engine's cache counters since construction. All
// zeros when caching is disabled (Config.CacheSize < 0).
func (e *Engine) CacheStats() CacheStats {
	var cs CacheStats
	if e.scores != nil {
		cs.ScoreHits, cs.ScoreMisses = e.scores.Stats()
	}
	if e.cachedIdx != nil {
		cs.BoundHits, cs.BoundMisses = e.cachedIdx.Stats()
	}
	return cs
}

// Search tokenizes the query string and returns the top-k answers. AND
// semantics apply: every answer covers all query words; a query word with
// no matching tuple yields no answers.
func (e *Engine) Search(query string, k int) ([]Result, error) {
	return e.SearchTerms(textindex.Tokenize(query), k, SearchOptions{})
}

// SearchTerms runs a query given pre-split terms and explicit options.
func (e *Engine) SearchTerms(terms []string, k int, opts SearchOptions) ([]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cirank: k must be at least 1, got %d", k)
	}
	sopts := search.Options{
		K:             k,
		Diameter:      opts.Diameter,
		MaxExpansions: opts.MaxExpansions,
		Workers:       e.workers,
		Scores:        e.scores,
	}
	if sopts.Diameter == 0 {
		sopts.Diameter = 4
	}
	switch {
	case sopts.MaxExpansions == 0:
		sopts.MaxExpansions = 200000
	case sopts.MaxExpansions < 0:
		sopts.MaxExpansions = 0
	}
	if e.starIdx != nil && !opts.DisableIndex && sopts.Diameter <= e.starIdx.MaxDepth() {
		if e.cachedIdx != nil {
			sopts.Index = e.cachedIdx
		} else {
			sopts.Index = e.starIdx
		}
	}
	answers, _, err := e.searcher.TopK(terms, sopts)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(answers))
	for i, a := range answers {
		out[i] = e.result(a, terms)
	}
	return out, nil
}

// result converts a search answer to the public form.
func (e *Engine) result(a search.Answer, terms []string) Result {
	nodes := a.Tree.Nodes()
	// Root first, rest in ascending order.
	ordered := make([]graph.NodeID, 0, len(nodes))
	ordered = append(ordered, a.Tree.Root())
	for _, v := range nodes {
		if v != a.Tree.Root() {
			ordered = append(ordered, v)
		}
	}
	indexOf := make(map[graph.NodeID]int, len(ordered))
	res := Result{Score: a.Score, tree: a.Tree, nodes: ordered}
	for i, v := range ordered {
		indexOf[v] = i
		n := e.g.Node(v)
		res.Rows = append(res.Rows, Row{
			Table:   n.Relation,
			Key:     n.Key,
			Text:    n.Text,
			Matched: e.ix.QueryMatchCount(v, terms) > 0,
		})
	}
	for _, edge := range a.Tree.Edges() {
		res.Edges = append(res.Edges, [2]int{indexOf[edge.Child], indexOf[edge.Parent]})
	}
	return res
}

// Importance returns the global importance value of the tuple (table, key),
// and whether the tuple exists. Useful for diagnostics and feedback tools.
func (e *Engine) Importance(table, key string) (float64, bool) {
	id, ok := e.mappingLookup(table, key)
	if !ok {
		return 0, false
	}
	return e.imp[id], true
}

// NumNodes reports the size of the engine's data graph.
func (e *Engine) NumNodes() int { return e.g.NumNodes() }

// NumEdges reports the number of directed edges in the data graph.
func (e *Engine) NumEdges() int { return e.g.NumEdges() }

func (e *Engine) mappingLookup(table, key string) (graph.NodeID, bool) {
	if e.lookup == nil {
		return 0, false
	}
	return e.lookup(table, key)
}

// lookup resolves tuples to nodes; injected by Builder.Build.
type lookupFunc func(table, key string) (graph.NodeID, bool)

// buildEngine assembles an Engine from prepared parts.
func buildEngine(g *graph.Graph, mp *relational.Mapping, isStar []bool, cfg Config, feedback map[graph.NodeID]float64) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("cirank: negative Config.Workers %d", cfg.Workers)
	}
	ix := textindex.Build(g)
	prOpts := pagerank.DefaultOptions()
	prOpts.Teleport = cfg.Teleport
	if cfg.FeedbackMix > 0 && len(feedback) > 0 {
		prOpts.Personalization = feedback
		prOpts.PersonalizationMix = cfg.FeedbackMix
	}
	pr, err := pagerank.Compute(g, prOpts)
	if err != nil {
		return nil, err
	}
	model, err := rwmp.New(g, ix, pr.Scores, rwmp.Params{Alpha: cfg.Alpha, Group: cfg.Group})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:        g,
		ix:       ix,
		model:    model,
		searcher: search.New(model),
		imp:      pr.Scores,
		lookup:   func(table, key string) (graph.NodeID, bool) { return mp.NodeOf(table, key) },
		workers:  cfg.Workers,
	}
	if cfg.CacheSize >= 0 {
		e.scores = rwmp.NewScoreCache(model, cfg.CacheSize)
	}
	if cfg.IndexDepth > 0 {
		damp := make([]float64, g.NumNodes())
		for i := range damp {
			damp[i] = model.Damp(graph.NodeID(i))
		}
		idx, err := pathindex.BuildStar(g, damp, isStar, cfg.IndexDepth)
		if err != nil {
			// Star indexing requires the star tables to cover every
			// relationship; fall back to unindexed search for schemas
			// where they don't.
			e.starIdx = nil
		} else {
			e.starIdx = idx
			if cfg.CacheSize >= 0 {
				e.cachedIdx = pathindex.NewCached(idx, cfg.CacheSize)
			}
		}
	}
	return e, nil
}
