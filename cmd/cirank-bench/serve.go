package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cirank/internal/servebench"
)

// Serve mode: -mode serve measures the HTTP serving stack instead of the
// engine — the same three tracked arms cmd/cirank-loadgen runs (baseline
// with the result cache and coalescing off, the full stack warmed, the
// full stack with hot reloads landing mid-load), written under
// servebench's schema so BENCH_serve.json joins the tracked trajectories.
// The report document comes straight from internal/servebench; this file
// only adapts it to the shared -out/-compare plumbing.

// runServeMode measures the serve arms for every scale and writes the
// report; when cmp is set the result is also diffed against the committed
// baseline with the same cell matching as every other mode.
func runServeMode(out string, baseline report, cmp bool, tolerance float64,
	dataset string, scales []float64, dataSeed, querySeed int64,
	clients, k int, duration time.Duration) error {
	if clients < 1 {
		return fmt.Errorf("serve mode: client count (the first -workers entry) must be positive")
	}
	dir, err := os.MkdirTemp("", "cirank-serve-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep := servebench.NewReport(dataset, dataSeed, querySeed)
	progress := func(line string) { fmt.Fprintf(os.Stderr, "cirank-bench: %s\n", line) }
	for _, scale := range scales {
		f, err := servebench.NewFixture(dir, dataset, scale, dataSeed, querySeed, k)
		if err != nil {
			return err
		}
		progress(fmt.Sprintf("%s scale %g: %d nodes, %d edges, %d distinct queries",
			dataset, scale, f.Nodes, f.Edges, len(f.Queries)))
		cells, err := f.RunArms(servebench.TrackedArms(clients, duration), k, progress)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, cells...)
	}

	if err := rep.Write(out); err != nil {
		return err
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "cirank-bench: wrote %s (%d results)\n", out, len(rep.Results))
	}

	if cmp {
		cur, err := asBenchReport(rep)
		if err != nil {
			return err
		}
		c := compareReports(baseline, cur)
		c.render(os.Stderr, tolerance)
		if reg := c.regressions(tolerance); len(reg) > 0 {
			return fmt.Errorf("%d cells regressed past %gx", len(reg), tolerance)
		}
		fmt.Fprintln(os.Stderr, "cirank-bench: no cell regressed past the tolerance")
	}
	return nil
}

// asBenchReport projects a servebench report onto the shared comparison
// type: the cell-key fields (stage, scale, workers, k) and ns_per_op share
// JSON names across both documents, so a marshal round-trip is the whole
// adapter.
func asBenchReport(r *servebench.Report) (report, error) {
	var out report
	buf, err := json.Marshal(r)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(buf, &out)
	return out, err
}
