package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cirank"
	"cirank/internal/datagen"
)

// Load mode (-mode load): measures the three ways an engine reaches memory —
// the cold offline build, a stream snapshot load and a zero-copy mmap open —
// per scale, all at workers=1 so the cells are comparable across machines.
// The grid quantifies what the sectioned snapshot format buys: a load must
// skip PageRank, the star index and the text-index build entirely, and the
// mmap path additionally skips decoding the flat arrays.

// runLoadScale builds one engine for the scale, snapshots it, and times the
// build / stream-load / mmap-open cells against that snapshot.
func runLoadScale(dataset string, scale float64, seed int64) ([]benchResult, error) {
	ds, b, err := generate(dataset, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := ds.Replay(b.InsertEntity, b.Relate); err != nil {
		return nil, err
	}
	cfg := cirank.DefaultConfig()
	cfg.Workers = 1
	eng, err := b.Build(cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		return nil, err
	}
	snap := buf.Bytes()
	dir, err := os.MkdirTemp("", "cirank-bench-load")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "eng.snap")
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		return nil, err
	}
	nodes, edges := eng.NumNodes(), eng.NumEdges()
	fmt.Fprintf(os.Stderr, "cirank-bench: %s scale %g: %d nodes, %d edges, snapshot %d bytes\n",
		dataset, scale, nodes, edges, len(snap))

	cell := func(stage string, f func(b *testing.B)) benchResult {
		r := testing.Benchmark(f)
		res := benchResult{
			Stage:   stage,
			Scale:   scale,
			Nodes:   nodes,
			Edges:   edges,
			Workers: 1,
			N:       r.N,
			NsPerOp: r.NsPerOp(),
			BytesOp: r.AllocedBytesPerOp(),
			Allocs:  r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "cirank-bench:   stage=%s: %d ns/op (%d iters)\n", stage, res.NsPerOp, res.N)
		return res
	}

	out := []benchResult{
		cell("build", func(tb *testing.B) {
			for i := 0; i < tb.N; i++ {
				bld := newBuilder(dataset)
				if err := ds.Replay(bld.InsertEntity, bld.Relate); err != nil {
					tb.Fatal(err)
				}
				if _, err := bld.Build(cfg); err != nil {
					tb.Fatal(err)
				}
			}
		}),
		cell("stream-load", func(tb *testing.B) {
			for i := 0; i < tb.N; i++ {
				if _, err := cirank.LoadEngine(bytes.NewReader(snap)); err != nil {
					tb.Fatal(err)
				}
			}
		}),
		cell("mmap-open", func(tb *testing.B) {
			for i := 0; i < tb.N; i++ {
				e, err := cirank.Open(path)
				if err != nil {
					tb.Fatal(err)
				}
				if err := e.Close(); err != nil {
					tb.Fatal(err)
				}
			}
		}),
	}

	buildNs := out[0].NsPerOp
	for i := range out {
		if buildNs > 0 && out[i].NsPerOp > 0 {
			out[i].SpeedupVsBuild = round2(float64(buildNs) / float64(out[i].NsPerOp))
		}
	}
	return out, nil
}

// generate creates the dataset and a matching public builder.
func generate(dataset string, scale float64, seed int64) (*datagen.Dataset, *cirank.Builder, error) {
	switch dataset {
	case "imdb":
		ds, err := datagen.GenerateIMDB(datagen.DefaultIMDBConfig(seed).Scale(scale))
		return ds, cirank.NewIMDBBuilder(), err
	case "dblp":
		ds, err := datagen.GenerateDBLP(datagen.DefaultDBLPConfig(seed).Scale(scale))
		return ds, cirank.NewDBLPBuilder(), err
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want imdb or dblp)", dataset)
	}
}

// newBuilder returns a fresh schema-matched builder (dataset is already
// validated by generate).
func newBuilder(dataset string) *cirank.Builder {
	if dataset == "imdb" {
		return cirank.NewIMDBBuilder()
	}
	return cirank.NewDBLPBuilder()
}
