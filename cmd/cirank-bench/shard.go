package main

// Shard mode: -mode shard measures the sharded scatter-gather coordinator
// (cirank.ShardedEngine) against the same skewed query stream as search
// mode, across a shards × workers × k grid, and writes BENCH_shard.json.
// Every shard count runs the exact same coordinator path — the shards=1
// cells go through ShardEngines + NewSharded too — so the speedup_vs_shard1
// column isolates what partitioning buys (smaller per-shard frontiers
// evaluated concurrently) from what it costs (the halo overlap and the
// bound-merge). Rankings are byte-identical at every shard count, which the
// difftest suite certifies; this grid only tracks the throughput side.

import (
	"fmt"
	"os"

	"cirank"
	"cirank/internal/searchbench"
	"cirank/internal/shard"
)

// shardRadius is the halo radius the shard grid partitions with. A radius-r
// halo certifies answer diameters up to 2r, so radius 2 exactly covers the
// benchmark's searchDiameter of 4 while keeping the halo — and with it the
// per-shard duplicated work — as small as the exactness horizon allows.
const shardRadius = 2

// runShardScale builds one engine for the scale, partitions it at every
// requested shard count, and replays the stream through the coordinator at
// every workers × k cell.
func runShardScale(dataset string, scale float64, dataSeed, querySeed int64, shardList, workerList, kList []int, benchtime string) ([]benchResult, error) {
	// The workload supplies the query stream; the engine under test is a
	// separate public-API build over the same generated dataset (the
	// coordinator needs a *cirank.Engine, not the bare scoring model).
	w, err := searchbench.Load(dataset, scale, dataSeed, querySeed)
	if err != nil {
		return nil, err
	}
	ds, b, err := generate(dataset, scale, dataSeed)
	if err != nil {
		return nil, err
	}
	if err := ds.Replay(b.InsertEntity, b.Relate); err != nil {
		return nil, err
	}
	eng, err := b.Build(cirank.DefaultConfig())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "cirank-bench: %s scale %g: %d nodes, %d edges, %d queries (stream %d)\n",
		dataset, scale, eng.NumNodes(), eng.NumEdges(), len(w.Queries), len(w.Stream))

	var out []benchResult
	var curDup float64
	cell := func(stage string, workers, k int, run func(i int) error) error {
		m, err := measureStream(run, len(w.Stream), benchtime)
		if err != nil {
			return fmt.Errorf("stage=%s scale=%g workers=%d k=%d: %w", stage, scale, workers, k, err)
		}
		out = append(out, benchResult{
			Stage:          stage,
			Scale:          scale,
			Nodes:          eng.NumNodes(),
			Edges:          eng.NumEdges(),
			Workers:        workers,
			K:              k,
			N:              m.n,
			NsPerOp:        m.meanNs,
			P50Ns:          m.p50Ns,
			P99Ns:          m.p99Ns,
			QPS:            round2(m.qps),
			AllocsPerQuery: round2(m.allocsPerQuery),
			HaloDup:        curDup,
		})
		fmt.Fprintf(os.Stderr, "cirank-bench:   stage=%s workers=%d k=%d: p50 %d ns, p99 %d ns, %.0f q/s, %.0f allocs/query (%d queries)\n",
			stage, workers, k, m.p50Ns, m.p99Ns, m.qps, m.allocsPerQuery, m.n)
		return nil
	}

	for _, count := range shardList {
		engines, err := cirank.ShardEngines(eng, count, shardRadius)
		if err != nil {
			return nil, err
		}
		se, err := cirank.NewSharded(engines)
		if err != nil {
			return nil, err
		}
		// The benched set's duplication factor comes from the engines
		// themselves: each shard subgraph is member-induced, so summed shard
		// edges over corpus edges IS the plan's factor. The contiguous split
		// of the same graph rides along as the untimed before-arm.
		haloEdges := 0
		for _, sh := range engines {
			haloEdges += sh.NumEdges()
		}
		curDup = round2(float64(haloEdges) / float64(eng.NumEdges()))
		contPlan, err := shard.NewPlan(w.G, count, shardRadius, shard.Contiguous)
		if err != nil {
			return nil, err
		}
		contDup := round2(contPlan.DuplicationFactor(w.G))
		out = append(out, benchResult{
			Stage:   fmt.Sprintf("shard%d-contiguous", count),
			Scale:   scale,
			Nodes:   eng.NumNodes(),
			Edges:   eng.NumEdges(),
			HaloDup: contDup,
		})
		fmt.Fprintf(os.Stderr, "cirank-bench: shards=%d radius=%d: %d halo edges, dup %.2fx locality vs %.2fx contiguous\n",
			count, shardRadius, haloEdges, curDup, contDup)
		for _, k := range kList {
			for _, workers := range workerList {
				opts := cirank.SearchOptions{Diameter: searchDiameter, Workers: workers}
				err := cell(fmt.Sprintf("shard%d", count), workers, k, func(i int) error {
					_, err := se.SearchTerms(w.Terms(i), k, opts)
					return err
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}

	// Derived columns: the workers=1 reference per stage and k, and the
	// single-shard coordinator reference per workers and k — the headline
	// scatter-gather scaling axis.
	type ref struct {
		stage string
		k     int
	}
	type shardRef struct {
		workers, k int
	}
	w1 := map[ref]int64{}
	shard1 := map[shardRef]int64{}
	for _, r := range out {
		if r.Workers == 1 {
			w1[ref{r.Stage, r.K}] = r.NsPerOp
		}
		if r.Stage == "shard1" {
			shard1[shardRef{r.Workers, r.K}] = r.NsPerOp
		}
	}
	for i := range out {
		if base := w1[ref{out[i].Stage, out[i].K}]; base > 0 && out[i].NsPerOp > 0 {
			out[i].SpeedupVsW1 = round2(float64(base) / float64(out[i].NsPerOp))
		}
		if base := shard1[shardRef{out[i].Workers, out[i].K}]; base > 0 && out[i].NsPerOp > 0 {
			out[i].SpeedupVsShard1 = round2(float64(base) / float64(out[i].NsPerOp))
		}
	}
	return out, nil
}
