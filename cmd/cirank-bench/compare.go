package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Comparison mode: -compare BENCH_build.json re-runs the grid and diffs it
// against a committed baseline, cell by cell. It exists so CI can catch a
// build-pipeline performance cliff without chasing noise: shared runners
// jitter by tens of percent, so only a slowdown past a generous tolerance
// (default 3x) fails the run. Everything else is reported as a delta table
// and left to humans.

// cellKey identifies one grid cell across runs. K participates only on
// search-mode cells; build and load cells carry K=0 on both sides (older
// baselines without the field unmarshal to 0), so their keys are unchanged.
type cellKey struct {
	Stage   string
	Scale   float64
	Workers int
	K       int
}

// cellDelta is the comparison of one matched grid cell.
type cellDelta struct {
	Key cellKey
	// Ratio is current ns/op divided by baseline ns/op (> 1 is slower).
	Ratio    float64
	BaseNs   int64
	CurNs    int64
	BaseAllo int64
	CurAllo  int64
	// BaseHalo and CurHalo carry the halo duplication factor on shard-mode
	// cells (0 elsewhere). Unlike timings the factor is deterministic, so it
	// is gated structurally: see structuralRegressions.
	BaseHalo float64
	CurHalo  float64
}

// haloSlack is the allowed relative growth of a cell's halo duplication
// factor over its committed baseline. The factor is deterministic in the
// plan inputs, so this is not a noise tolerance — it only keeps a sub-2%
// wobble from an intentional strategy tweak from failing CI before the
// baseline is recommitted alongside it.
const haloSlack = 1.02

// comparison is the full diff of two reports.
type comparison struct {
	Deltas []cellDelta
	// BaseOnly and CurOnly list cells present in exactly one report; grid
	// drift is worth a warning but never a failure.
	BaseOnly []cellKey
	CurOnly  []cellKey
}

// compareReports matches cells by (stage, scale, workers) and computes the
// per-cell slowdown ratios, sorted worst first.
func compareReports(base, cur report) comparison {
	index := make(map[cellKey]benchResult, len(base.Results))
	for _, r := range base.Results {
		index[cellKey{r.Stage, r.Scale, r.Workers, r.K}] = r
	}
	var c comparison
	seen := make(map[cellKey]bool, len(cur.Results))
	for _, r := range cur.Results {
		k := cellKey{r.Stage, r.Scale, r.Workers, r.K}
		seen[k] = true
		b, ok := index[k]
		if !ok {
			c.CurOnly = append(c.CurOnly, k)
			continue
		}
		d := cellDelta{
			Key: k, BaseNs: b.NsPerOp, CurNs: r.NsPerOp, BaseAllo: b.Allocs, CurAllo: r.Allocs,
			BaseHalo: b.HaloDup, CurHalo: r.HaloDup,
		}
		if b.NsPerOp > 0 {
			d.Ratio = float64(r.NsPerOp) / float64(b.NsPerOp)
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, r := range base.Results {
		k := cellKey{r.Stage, r.Scale, r.Workers, r.K}
		if !seen[k] {
			c.BaseOnly = append(c.BaseOnly, k)
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Ratio > c.Deltas[j].Ratio })
	return c
}

// regressions returns the deltas whose slowdown exceeds the tolerance.
func (c comparison) regressions(tolerance float64) []cellDelta {
	var out []cellDelta
	for _, d := range c.Deltas {
		if d.Ratio > tolerance {
			out = append(out, d)
		}
	}
	return out
}

// structuralRegressions returns the cells whose halo duplication factor grew
// past the committed baseline. Cells without a baseline factor (older
// reports, non-shard grids) never fail; a cell that lost its factor entirely
// does, because silently dropping the column would disarm the gate.
func (c comparison) structuralRegressions() []cellDelta {
	var out []cellDelta
	for _, d := range c.Deltas {
		if d.BaseHalo > 0 && (d.CurHalo > d.BaseHalo*haloSlack || d.CurHalo == 0) {
			out = append(out, d)
		}
	}
	return out
}

// render writes the delta table in a stable, line-oriented form.
func (c comparison) render(w *os.File, tolerance float64) {
	fmt.Fprintf(w, "cirank-bench: %d matched cells (tolerance %.1fx)\n", len(c.Deltas), tolerance)
	for _, d := range c.Deltas {
		mark := " "
		if d.Ratio > tolerance {
			mark = "!"
		}
		if d.BaseHalo > 0 && (d.CurHalo > d.BaseHalo*haloSlack || d.CurHalo == 0) {
			mark = "!"
		}
		halo := ""
		if d.BaseHalo > 0 || d.CurHalo > 0 {
			halo = fmt.Sprintf(", halo %.2f -> %.2f", d.BaseHalo, d.CurHalo)
		}
		fmt.Fprintf(w, "%s %-12s scale=%-5g workers=%-2d%s  %.2fx  (%d -> %d ns/op, %d -> %d allocs%s)\n",
			mark, d.Key.Stage, d.Key.Scale, d.Key.Workers, kSuffix(d.Key), d.Ratio, d.BaseNs, d.CurNs, d.BaseAllo, d.CurAllo, halo)
	}
	for _, k := range c.BaseOnly {
		fmt.Fprintf(w, "? baseline-only cell: %s scale=%g workers=%d%s\n", k.Stage, k.Scale, k.Workers, kSuffix(k))
	}
	for _, k := range c.CurOnly {
		fmt.Fprintf(w, "? new cell without baseline: %s scale=%g workers=%d%s\n", k.Stage, k.Scale, k.Workers, kSuffix(k))
	}
}

// kSuffix renders the k axis on search-mode cells; build and load cells
// (K=0) keep their old one-line format.
func kSuffix(k cellKey) string {
	if k.K == 0 {
		return ""
	}
	return fmt.Sprintf(" k=%-2d", k.K)
}

// loadBaseline reads and schema-checks a committed report against the
// current run's schema (build grid or load mode).
func loadBaseline(path, schema string) (report, error) {
	var rep report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("reading baseline: %w", err)
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if rep.Schema != schema {
		return rep, fmt.Errorf("baseline %s has schema %q, want %q", path, rep.Schema, schema)
	}
	return rep, nil
}
