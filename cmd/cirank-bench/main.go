// Command cirank-bench runs the offline-build benchmark grid (the same
// stages and axes as BenchmarkBuild in the root package, via
// internal/buildbench) and writes the results as JSON, so the repository can
// track the build pipeline's performance trajectory in BENCH_build.json
// instead of in one-off benchmark pastes.
//
// Usage:
//
//	cirank-bench -out BENCH_build.json
//	cirank-bench -dataset dblp -scales 0.25,1 -workers 1,2,4,8 -out -
//	cirank-bench -compare BENCH_build.json -scales 0.25 -out -
//	cirank-bench -mode load -out BENCH_load.json
//	cirank-bench -mode search -out BENCH_search.json
//	cirank-bench -mode serve -out BENCH_serve.json
//	cirank-bench -mode shard -out BENCH_shard.json
//
// -mode load measures engine startup instead of the build grid: for each
// scale it times the cold public-API build, a stream snapshot load
// (cirank.LoadEngine) and a zero-copy mmap open (cirank.Open), writing
// BENCH_load.json under its own schema. The speedup_vs_build column is the
// point of the exercise: how much startup time a snapshot saves.
//
// -mode search measures the online branch-and-bound hot path: for each scale
// it replays internal/searchbench's skewed AOL-style query stream against the
// live pooled engine (every workers × k cell) and against the frozen
// pre-rewrite "naive-alloc" baseline, timing every query individually so the
// report can carry p50/p99 latency, throughput and exact allocations per
// query (see the searchbench package comment for the field-by-field format).
// -benchtime sets the measured budget per cell ("4x" = four stream passes,
// or a duration); -seed is the dataset seed and -queryseed the workload
// seed, both defaulting to the dataset's proven pair.
//
// -mode shard measures the sharded scatter-gather coordinator: for each
// scale it partitions the engine at every -shards count (through
// cirank.ShardEngines + NewSharded, radius 2) and replays the search-mode
// stream through the coordinator at every workers × k cell, writing
// BENCH_shard.json. The speedup_vs_shard1 column is the point: throughput
// of N partitioned engines answering concurrently over the single-shard
// coordinator at the same workers and k. Rankings are byte-identical at
// every shard count (certified by the difftest suite), so this grid only
// tracks throughput.
//
// -mode serve measures the HTTP serving stack (internal/server) instead of
// the engine: internal/servebench replays the same skewed stream through a
// live server in three tracked arms — serving-caches off, the full stack
// warmed, and the full stack with snapshot hot reloads landing mid-load —
// and writes BENCH_serve.json under servebench's schema. In this mode
// -workers is the closed-loop client count (first entry only), -ks the
// answer count (first entry only), and -benchtime the measured window per
// arm, a duration. cmd/cirank-loadgen is the standalone front end with the
// full arm vocabulary (open-loop rates, custom arms); this mode exists so
// the familiar -compare plumbing covers serve cells too.
//
// With -compare the freshly measured grid is diffed against the committed
// baseline cell by cell (matched on stage, scale and workers) and the exit
// status is nonzero when any cell slowed down by more than -tolerance
// (default 3x — generous on purpose, so shared-runner jitter passes and
// only real cliffs fail).
//
// Two derived columns make the trajectory readable at a glance:
// speedup_vs_w1 (same stage, workers=1) measures the parallel fan-out and
// needs a multi-core machine to exceed 1; speedup_vs_maps (the frozen
// map-based naive baseline at the same scale) measures the allocation-lean
// scratch-buffer rewrite and shows on any machine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"cirank/internal/buildbench"
	"cirank/internal/searchbench"
	"cirank/internal/servebench"
)

// reportSchema and loadSchema name the two report document formats (build
// grid and load/startup mode); -compare refuses baselines written under a
// different schema than the current run.
const (
	reportSchema = "cirank/bench-build/v1"
	loadSchema   = "cirank/bench-load/v1"
	searchSchema = "cirank/bench-search/v1"
	shardSchema  = "cirank/bench-shard/v1"
)

// benchResult is one grid cell of the report.
type benchResult struct {
	Stage   string  `json:"stage"`
	Scale   float64 `json:"scale"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	Workers int     `json:"workers"`
	// K is the requested answer count on search-mode cells (0 otherwise).
	K       int   `json:"k,omitempty"`
	N       int   `json:"n"`
	NsPerOp int64 `json:"ns_per_op"`
	BytesOp int64 `json:"bytes_per_op"`
	Allocs  int64 `json:"allocs_per_op"`
	// P50Ns/P99Ns/QPS/AllocsPerQuery are set on search-mode cells, where
	// every query is timed individually: latency percentiles, stream
	// throughput, and the exact runtime allocation counter per query.
	P50Ns          int64   `json:"p50_ns,omitempty"`
	P99Ns          int64   `json:"p99_ns,omitempty"`
	QPS            float64 `json:"queries_per_sec,omitempty"`
	AllocsPerQuery float64 `json:"allocs_per_query,omitempty"`
	// SpeedupVsW1 is this stage's workers=1 time divided by this cell's
	// time (1 for the workers=1 cells themselves).
	SpeedupVsW1 float64 `json:"speedup_vs_w1"`
	// SpeedupVsMaps, set on "naive" cells, is the frozen map-based
	// baseline's time at the same scale divided by this cell's time.
	SpeedupVsMaps float64 `json:"speedup_vs_maps,omitempty"`
	// SpeedupVsBuild, set on load-mode cells, is the cold build's time at
	// the same scale divided by this cell's time.
	SpeedupVsBuild float64 `json:"speedup_vs_build,omitempty"`
	// SpeedupVsNaiveAlloc, set on search-mode "search" cells, is the frozen
	// pre-rewrite engine's time at the same scale and k divided by this
	// cell's time.
	SpeedupVsNaiveAlloc float64 `json:"speedup_vs_naive_alloc,omitempty"`
	// SpeedupVsShard1, set on shard-mode cells, is the single-shard
	// coordinator's time at the same scale, workers and k divided by this
	// cell's time — the scatter-gather scaling headline.
	SpeedupVsShard1 float64 `json:"speedup_vs_shard1,omitempty"`
	// HaloDup, set on shard-mode cells, is the partition plan's halo
	// duplication factor: the sum of every shard subgraph's edges divided by
	// the corpus edge count (1.0 = no replication). It is deterministic in
	// (dataset, seed, scale, shard count, strategy), so -compare gates on it
	// structurally: growth past the committed baseline fails with exit code
	// 3, unlike timing cells which only warn within the noise tolerance.
	// The shardN-contiguous cells carry the legacy contiguous split's factor
	// for the same partition as an untimed before/after reference.
	HaloDup float64 `json:"halo_dup_factor,omitempty"`
}

// report is the BENCH_build.json document.
type report struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Dataset    string `json:"dataset"`
	Seed       int64  `json:"seed"`
	// QuerySeed drives the search-mode workload sampler and stream skew.
	QuerySeed int64         `json:"query_seed,omitempty"`
	Note      string        `json:"note"`
	Results   []benchResult `json:"results"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_build.json", "output path ('-' for stdout)")
		dataset   = flag.String("dataset", "dblp", "dataset to generate: imdb or dblp")
		scales    = flag.String("scales", "0.25,1", "comma-separated dataset scale multipliers")
		workers   = flag.String("workers", "1,2,4,8", "comma-separated worker counts")
		seed      = flag.Int64("seed", 42, "generation seed")
		compare   = flag.String("compare", "", "baseline report to diff against (exit 1 past -tolerance)")
		tolerance = flag.Float64("tolerance", 3.0, "max allowed per-cell slowdown ratio in -compare mode")
		mode      = flag.String("mode", "build", "what to measure: build (stage grid), load (cold build vs stream load vs mmap open), search (online top-k latency) or shard (scatter-gather scaling)")
		ks        = flag.String("ks", "5,10", "comma-separated answer counts k (search and shard modes)")
		shards    = flag.String("shards", "1,2,4", "comma-separated shard counts (shard mode)")
		querySeed = flag.Int64("queryseed", -1, "workload seed (search mode; -1 picks the dataset's proven pair)")
		benchtime = flag.String("benchtime", "4x", "measured budget per search cell: N stream passes (\"4x\") or a duration (\"2s\")")
	)
	flag.Parse()

	schema := reportSchema
	switch *mode {
	case "build":
	case "load":
		schema = loadSchema
	case "search":
		schema = searchSchema
	case "serve":
		schema = servebench.Schema
	case "shard":
		schema = shardSchema
	default:
		fail(fmt.Errorf("bad -mode %q: want build, load, search, serve or shard", *mode))
	}

	// The search, serve and shard grids have their own proven defaults:
	// smaller scales (online search visits a bounded neighbourhood, so the
	// axis is posting density, not graph size), fewer workers, and the
	// dataset's seed pair known to yield a full AOL-style workload. Serve
	// mode reinterprets -workers as the closed-loop client count,
	// -benchtime as the measured window per arm, and takes one k. Shard
	// mode defaults to a small scale plus a larger one — partitioning only
	// has something to divide when the corpus outgrows a single frontier,
	// but CI smoke needs a cheap matching cell — and per-shard workers 1
	// and 2. Explicit flags always win.
	if *mode == "search" || *mode == "serve" || *mode == "shard" {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["scales"] {
			*scales = "0.12,0.25,0.5"
			if *mode == "serve" {
				*scales = "0.25"
			}
			if *mode == "shard" {
				*scales = "0.25,2"
			}
		}
		if !set["workers"] {
			*workers = "1,2,4"
			if *mode == "serve" {
				*workers = "8"
			}
			if *mode == "shard" {
				*workers = "1,2"
			}
		}
		if *mode == "serve" {
			if !set["ks"] {
				*ks = "10"
			}
			if !set["benchtime"] {
				*benchtime = "2s"
			}
		}
		if *mode == "shard" && !set["benchtime"] {
			*benchtime = "2x"
		}
		defData, defQuery := searchbench.DefaultSeeds(*dataset)
		if !set["seed"] {
			*seed = defData
		}
		if *querySeed < 0 {
			*querySeed = defQuery
		}
	}

	var baseline report
	if *compare != "" {
		var err error
		if baseline, err = loadBaseline(*compare, schema); err != nil {
			fail(err)
		}
		if *tolerance <= 1 {
			fail(fmt.Errorf("bad -tolerance %g: must exceed 1", *tolerance))
		}
	}

	scaleList, err := parseFloats(*scales)
	if err != nil {
		fail(fmt.Errorf("bad -scales: %w", err))
	}
	workerList, err := parseInts(*workers)
	if err != nil {
		fail(fmt.Errorf("bad -workers: %w", err))
	}
	kList, err := parseInts(*ks)
	if err != nil {
		fail(fmt.Errorf("bad -ks: %w", err))
	}
	shardList, err := parseInts(*shards)
	if err != nil {
		fail(fmt.Errorf("bad -shards: %w", err))
	}

	if *mode == "serve" {
		dur, err := time.ParseDuration(*benchtime)
		if err != nil || dur <= 0 {
			fail(fmt.Errorf("bad -benchtime %q: serve mode wants a positive duration (e.g. 2s)", *benchtime))
		}
		if err := runServeMode(*out, baseline, *compare != "", *tolerance,
			*dataset, scaleList, *seed, *querySeed, workerList[0], kList[0], dur); err != nil {
			fail(err)
		}
		return
	}

	rep := report{
		Schema:     schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Dataset:    *dataset,
		Seed:       *seed,
		Note: "speedup_vs_w1 compares against workers=1 of the same stage and scale " +
			"(flat when gomaxprocs=1); speedup_vs_maps compares the pooled-buffer naive " +
			"build against the frozen pre-rewrite map-based baseline at the same scale.",
	}
	if *mode == "load" {
		rep.Note = "Engine startup paths at workers=1: build is the cold public-API build, " +
			"stream-load decodes a v2 snapshot from memory (cirank.LoadEngine), mmap-open " +
			"maps the snapshot file zero-copy (cirank.Open). speedup_vs_build is cold-build " +
			"time over this cell's time at the same scale."
	}
	if *mode == "search" {
		rep.QuerySeed = *querySeed
		rep.Note = "Online top-k over the skewed AOL-style query stream; every query timed " +
			"individually (p50/p99 are per-query latency percentiles, allocs_per_query the " +
			"exact runtime allocation counter). speedup_vs_naive_alloc compares the pooled " +
			"live engine against the frozen pre-rewrite per-candidate allocator at the same " +
			"scale and k, and shows on any machine; speedup_vs_w1 needs gomaxprocs>1."
	}
	if *mode == "shard" {
		rep.QuerySeed = *querySeed
		rep.Note = "Sharded scatter-gather coordinator over the skewed AOL-style query stream; " +
			"stage shardN is the coordinator over N radius-2 partitions (shard1 included, so " +
			"the coordinator overhead is in every cell). speedup_vs_shard1 compares against " +
			"the single-shard coordinator at the same workers and k; the scatter runs shards " +
			"concurrently, so exceeding 1 needs gomaxprocs>1 and halos smaller than the " +
			"corpus. halo_dup_factor is the plan's summed shard edges over corpus edges " +
			"(deterministic, structurally gated by -compare: growth past the baseline exits 3); " +
			"the untimed shardN-contiguous cells carry the legacy contiguous split's factor as " +
			"the before-arm. Rankings are byte-identical at every shard count and strategy."
	}

	for _, scale := range scaleList {
		if *mode == "load" {
			cells, err := runLoadScale(*dataset, scale, *seed)
			if err != nil {
				fail(err)
			}
			rep.Results = append(rep.Results, cells...)
			continue
		}
		if *mode == "search" {
			cells, err := runSearchScale(*dataset, scale, *seed, *querySeed, workerList, kList, *benchtime)
			if err != nil {
				fail(err)
			}
			rep.Results = append(rep.Results, cells...)
			continue
		}
		if *mode == "shard" {
			cells, err := runShardScale(*dataset, scale, *seed, *querySeed, shardList, workerList, kList, *benchtime)
			if err != nil {
				fail(err)
			}
			rep.Results = append(rep.Results, cells...)
			continue
		}
		w, err := buildbench.Load(*dataset, scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "cirank-bench: %s scale %g: %d nodes, %d edges\n",
			*dataset, scale, w.G.NumNodes(), w.G.NumEdges())
		rep.Results = append(rep.Results, runScale(w, scale, workerList)...)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	} else {
		fmt.Fprintf(os.Stderr, "cirank-bench: wrote %s (%d results)\n", *out, len(rep.Results))
	}

	if *compare != "" {
		if baseline.Dataset != rep.Dataset || baseline.Seed != rep.Seed {
			fmt.Fprintf(os.Stderr, "cirank-bench: warning: baseline is %s/seed %d, this run is %s/seed %d\n",
				baseline.Dataset, baseline.Seed, rep.Dataset, rep.Seed)
		}
		c := compareReports(baseline, rep)
		c.render(os.Stderr, *tolerance)
		// Structural regressions exit with a distinct code so CI can gate
		// hard on them while leaving timing cells warn-only on noisy runners.
		if sreg := c.structuralRegressions(); len(sreg) > 0 {
			fmt.Fprintf(os.Stderr, "cirank-bench: error: %d cells grew their halo duplication factor past the baseline\n", len(sreg))
			os.Exit(3)
		}
		if reg := c.regressions(*tolerance); len(reg) > 0 {
			fail(fmt.Errorf("%d cells regressed past %gx", len(reg), *tolerance))
		}
		fmt.Fprintln(os.Stderr, "cirank-bench: no cell regressed past the tolerance")
	}
}

// runScale measures every stage × worker cell for one loaded workload and
// fills in the derived speedup columns.
func runScale(w *buildbench.Workload, scale float64, workerList []int) []benchResult {
	var out []benchResult
	cell := func(stage string, workers int, f func(b *testing.B)) benchResult {
		r := testing.Benchmark(f)
		res := benchResult{
			Stage:   stage,
			Scale:   scale,
			Nodes:   w.G.NumNodes(),
			Edges:   w.G.NumEdges(),
			Workers: workers,
			N:       r.N,
			NsPerOp: r.NsPerOp(),
			BytesOp: r.AllocedBytesPerOp(),
			Allocs:  r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "cirank-bench:   stage=%s workers=%d: %d ns/op (%d iters)\n",
			stage, workers, res.NsPerOp, res.N)
		return res
	}

	ctx := context.Background()
	for _, workers := range workerList {
		workers := workers
		out = append(out, cell("pipeline", workers, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bld, err := w.NewBuilder()
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := w.BuildPipeline(ctx, bld, workers); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	for _, st := range buildbench.Stages() {
		if st.Quadratic && scale > 1 {
			continue
		}
		counts := workerList
		if !st.Parallel {
			counts = []int{1}
		}
		for _, workers := range counts {
			st, workers := st, workers
			out = append(out, cell(st.Name, workers, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := st.Run(ctx, w, workers); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	// Derived columns: per-stage workers=1 reference, and the map baseline
	// for the naive rows.
	w1 := map[string]int64{}
	var mapsNs int64
	for _, r := range out {
		if r.Workers == 1 {
			w1[r.Stage] = r.NsPerOp
		}
		if r.Stage == "naive-maps" {
			mapsNs = r.NsPerOp
		}
	}
	for i := range out {
		if ref := w1[out[i].Stage]; ref > 0 && out[i].NsPerOp > 0 {
			out[i].SpeedupVsW1 = round2(float64(ref) / float64(out[i].NsPerOp))
		}
		if out[i].Stage == "naive" && mapsNs > 0 && out[i].NsPerOp > 0 {
			out[i].SpeedupVsMaps = round2(float64(mapsNs) / float64(out[i].NsPerOp))
		}
	}
	return out
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("worker count %q must be a positive integer", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "cirank-bench:", err)
	os.Exit(1)
}
