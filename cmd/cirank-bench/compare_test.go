package main

import (
	"os"
	"path/filepath"
	"testing"
)

func cell(stage string, scale float64, workers int, ns, allocs int64) benchResult {
	return benchResult{Stage: stage, Scale: scale, Workers: workers, NsPerOp: ns, Allocs: allocs}
}

func TestCompareReports(t *testing.T) {
	base := report{Results: []benchResult{
		cell("pipeline", 0.25, 1, 1000, 10),
		cell("pipeline", 0.25, 2, 600, 12),
		cell("naive", 0.25, 1, 400, 5),
		cell("pagerank", 1, 1, 9000, 80),
	}}
	cur := report{Results: []benchResult{
		cell("pipeline", 0.25, 1, 1100, 10), // 1.1x: within any sane tolerance
		cell("pipeline", 0.25, 2, 2500, 12), // 4.17x: past the default 3x
		cell("naive", 0.25, 1, 390, 5),      // faster
		cell("star", 0.25, 1, 50, 1),        // new cell, no baseline
	}}
	c := compareReports(base, cur)
	if len(c.Deltas) != 3 {
		t.Fatalf("matched %d cells, want 3", len(c.Deltas))
	}
	// Sorted worst first.
	if k := c.Deltas[0].Key; k.Stage != "pipeline" || k.Workers != 2 {
		t.Fatalf("worst cell is %+v, want pipeline/workers=2", k)
	}
	if r := c.Deltas[0].Ratio; r < 4.1 || r > 4.2 {
		t.Fatalf("worst ratio %g, want ~4.17", r)
	}
	if len(c.CurOnly) != 1 || c.CurOnly[0].Stage != "star" {
		t.Fatalf("CurOnly = %+v, want the star cell", c.CurOnly)
	}
	if len(c.BaseOnly) != 1 || c.BaseOnly[0].Stage != "pagerank" {
		t.Fatalf("BaseOnly = %+v, want the pagerank cell", c.BaseOnly)
	}
	if reg := c.regressions(3); len(reg) != 1 || reg[0].Key.Workers != 2 {
		t.Fatalf("regressions(3) = %+v, want exactly the 4.17x cell", reg)
	}
	if reg := c.regressions(5); len(reg) != 0 {
		t.Fatalf("regressions(5) = %+v, want none", reg)
	}
}

// haloCell is a shard-mode grid cell carrying a halo duplication factor.
func haloCell(stage string, workers int, ns int64, halo float64) benchResult {
	return benchResult{Stage: stage, Scale: 0.25, Workers: workers, NsPerOp: ns, HaloDup: halo}
}

func TestCompareStructuralRegressions(t *testing.T) {
	base := report{Results: []benchResult{
		haloCell("shard4", 1, 1000, 1.60),
		haloCell("shard4-contiguous", 0, 0, 3.90),
		haloCell("shard2", 1, 800, 1.30),
		cell("pipeline", 0.25, 1, 500, 5), // no factor on either side
	}}
	cur := report{Results: []benchResult{
		haloCell("shard4", 1, 4000, 1.60),         // 4x slower but structurally clean
		haloCell("shard4-contiguous", 0, 0, 3.90), // unchanged
		haloCell("shard2", 1, 800, 1.45),          // factor grew past the 2% slack
		cell("pipeline", 0.25, 1, 510, 5),         // still no factor: never structural
	}}
	c := compareReports(base, cur)
	sreg := c.structuralRegressions()
	if len(sreg) != 1 || sreg[0].Key.Stage != "shard2" {
		t.Fatalf("structuralRegressions = %+v, want exactly the shard2 cell", sreg)
	}
	// Timing noise stays a timing concern: the 4x cell is a perf regression,
	// not a structural one.
	if reg := c.regressions(3); len(reg) != 1 || reg[0].Key.Stage != "shard4" {
		t.Fatalf("regressions(3) = %+v, want exactly the shard4 cell", reg)
	}
	// Growth within the slack passes.
	cur.Results[2].HaloDup = 1.31
	if sreg := compareReports(base, cur).structuralRegressions(); len(sreg) != 0 {
		t.Fatalf("within-slack growth flagged: %+v", sreg)
	}
	// Dropping the factor entirely must not disarm the gate.
	cur.Results[2].HaloDup = 0
	if sreg := compareReports(base, cur).structuralRegressions(); len(sreg) != 1 {
		t.Fatalf("lost factor not flagged: %+v", sreg)
	}
}

func TestCompareZeroBaselineNs(t *testing.T) {
	base := report{Results: []benchResult{cell("pipeline", 1, 1, 0, 0)}}
	cur := report{Results: []benchResult{cell("pipeline", 1, 1, 500, 0)}}
	c := compareReports(base, cur)
	// A corrupt zero baseline must not divide by zero or count as regression.
	if len(c.Deltas) != 1 || c.Deltas[0].Ratio != 0 {
		t.Fatalf("deltas = %+v, want one cell with ratio 0", c.Deltas)
	}
	if reg := c.regressions(3); len(reg) != 0 {
		t.Fatalf("regressions = %+v, want none", reg)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"schema":"cirank/bench-build/v1","results":[]}`), 0o644)
	if _, err := loadBaseline(good, reportSchema); err != nil {
		t.Fatalf("good baseline rejected: %v", err)
	}
	if _, err := loadBaseline(good, loadSchema); err == nil {
		t.Fatal("build-schema baseline accepted for a load-mode run")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"something/else"}`), 0o644)
	if _, err := loadBaseline(bad, reportSchema); err == nil {
		t.Fatal("wrong-schema baseline accepted")
	}
	if _, err := loadBaseline(filepath.Join(dir, "missing.json"), reportSchema); err == nil {
		t.Fatal("missing baseline accepted")
	}
	garbled := filepath.Join(dir, "garbled.json")
	os.WriteFile(garbled, []byte(`{"schema":`), 0o644)
	if _, err := loadBaseline(garbled, reportSchema); err == nil {
		t.Fatal("garbled baseline accepted")
	}
}
