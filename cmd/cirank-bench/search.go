package main

// Search mode: -mode search measures the online branch-and-bound hot path
// over internal/searchbench's skewed query stream and writes
// BENCH_search.json. Unlike the build grid, per-operation means are not
// enough here — an interactive search path is judged by its tail — so this
// mode hand-rolls the measurement loop instead of using testing.Benchmark:
// every query execution is timed individually, percentiles come from the
// sorted per-query latencies, and allocations per query come from the
// runtime's exact allocation counter around the measured passes.

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"cirank/internal/search"
	"cirank/internal/searchbench"
)

const searchDiameter = 4

// runSearchScale measures the live engine at every workers × k cell plus the
// frozen naive-alloc baseline (sequential) at every k, for one dataset scale.
func runSearchScale(dataset string, scale float64, dataSeed, querySeed int64, workerList, kList []int, benchtime string) ([]benchResult, error) {
	w, err := searchbench.Load(dataset, scale, dataSeed, querySeed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "cirank-bench: %s scale %g: %d nodes, %d edges, %d queries (stream %d)\n",
		dataset, scale, w.G.NumNodes(), w.G.NumEdges(), len(w.Queries), len(w.Stream))

	var out []benchResult
	cell := func(stage string, workers, k int, run func(i int) error) error {
		m, err := measureStream(run, len(w.Stream), benchtime)
		if err != nil {
			return fmt.Errorf("stage=%s scale=%g workers=%d k=%d: %w", stage, scale, workers, k, err)
		}
		out = append(out, benchResult{
			Stage:          stage,
			Scale:          scale,
			Nodes:          w.G.NumNodes(),
			Edges:          w.G.NumEdges(),
			Workers:        workers,
			K:              k,
			N:              m.n,
			NsPerOp:        m.meanNs,
			P50Ns:          m.p50Ns,
			P99Ns:          m.p99Ns,
			QPS:            round2(m.qps),
			AllocsPerQuery: round2(m.allocsPerQuery),
		})
		fmt.Fprintf(os.Stderr, "cirank-bench:   stage=%s workers=%d k=%d: p50 %d ns, p99 %d ns, %.0f q/s, %.0f allocs/query (%d queries)\n",
			stage, workers, k, m.p50Ns, m.p99Ns, m.qps, m.allocsPerQuery, m.n)
		return nil
	}

	for _, k := range kList {
		for _, workers := range workerList {
			s := search.New(w.M)
			opts := search.Options{K: k, Diameter: searchDiameter, Workers: workers}
			err := cell("search", workers, k, func(i int) error {
				_, _, err := s.TopK(w.Terms(i), opts)
				return err
			})
			if err != nil {
				return nil, err
			}
		}
		opts := search.Options{K: k, Diameter: searchDiameter, Workers: 1}
		err := cell("naive-alloc", 1, k, func(i int) error {
			_, err := searchbench.NaiveAllocTopK(w.M, w.Terms(i), opts)
			return err
		})
		if err != nil {
			return nil, err
		}
	}

	// Derived columns: the workers=1 reference per stage and k, and the
	// frozen baseline reference per k.
	type ref struct {
		stage string
		k     int
	}
	w1 := map[ref]int64{}
	naive := map[int]int64{}
	for _, r := range out {
		if r.Workers == 1 {
			w1[ref{r.Stage, r.K}] = r.NsPerOp
		}
		if r.Stage == "naive-alloc" {
			naive[r.K] = r.NsPerOp
		}
	}
	for i := range out {
		if base := w1[ref{out[i].Stage, out[i].K}]; base > 0 && out[i].NsPerOp > 0 {
			out[i].SpeedupVsW1 = round2(float64(base) / float64(out[i].NsPerOp))
		}
		if out[i].Stage == "search" {
			if base := naive[out[i].K]; base > 0 && out[i].NsPerOp > 0 {
				out[i].SpeedupVsNaiveAlloc = round2(float64(base) / float64(out[i].NsPerOp))
			}
		}
	}
	return out, nil
}

// streamMetrics aggregates one cell's measured passes.
type streamMetrics struct {
	n              int
	meanNs         int64
	p50Ns, p99Ns   int64
	qps            float64
	allocsPerQuery float64
}

// measureStream runs one unmeasured warmup pass over the stream (so pooled
// scratch reaches its steady state, as a long-running server's would), then
// timed passes per the -benchtime budget: "Nx" runs exactly N passes, a
// duration keeps starting passes until the budget is spent (always at least
// one). Each query is timed individually for the percentiles; the allocation
// count is the exact runtime.MemStats.Mallocs delta across the measured
// passes divided by the query count.
func measureStream(run func(i int) error, streamLen int, benchtime string) (streamMetrics, error) {
	var m streamMetrics
	passes, budget, err := parseBenchtime(benchtime)
	if err != nil {
		return m, err
	}
	for i := 0; i < streamLen; i++ {
		if err := run(i); err != nil {
			return m, err
		}
	}

	var lat []time.Duration
	var total time.Duration
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for pass := 0; passes > 0 && pass < passes || passes == 0 && (pass == 0 || total < budget); pass++ {
		for i := 0; i < streamLen; i++ {
			t0 := time.Now()
			err := run(i)
			d := time.Since(t0)
			if err != nil {
				return m, err
			}
			lat = append(lat, d)
			total += d
		}
	}
	runtime.ReadMemStats(&ms1)

	m.n = len(lat)
	m.meanNs = int64(total) / int64(m.n)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	m.p50Ns = int64(lat[m.n/2])
	m.p99Ns = int64(lat[m.n*99/100])
	m.qps = float64(m.n) / total.Seconds()
	m.allocsPerQuery = float64(ms1.Mallocs-ms0.Mallocs) / float64(m.n)
	return m, nil
}

// parseBenchtime interprets the -benchtime value: "Nx" means N measured
// passes over the stream, anything else is a time.Duration budget.
func parseBenchtime(s string) (passes int, budget time.Duration, err error) {
	if n, ok := strings.CutSuffix(s, "x"); ok {
		passes, err = strconv.Atoi(n)
		if err != nil || passes < 1 {
			return 0, 0, fmt.Errorf("bad -benchtime %q: want a positive pass count like 4x", s)
		}
		return passes, 0, nil
	}
	budget, err = time.ParseDuration(s)
	if err != nil || budget <= 0 {
		return 0, 0, fmt.Errorf("bad -benchtime %q: want 4x or a positive duration like 2s", s)
	}
	return 0, budget, nil
}
