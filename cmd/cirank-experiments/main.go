// Command cirank-experiments regenerates the evaluation figures of the
// CI-Rank paper (§VI) as text tables: the α and g parameter sweeps
// (Fig. 6–7), the effectiveness comparison against SPARK and BANKS
// (Fig. 8–9), the naive-vs-branch-and-bound timing (Fig. 10) and the star
// index timing studies (Fig. 11–12).
//
// Usage:
//
//	cirank-experiments -fig all
//	cirank-experiments -fig 8,9 -scale 2 -queries 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cirank/internal/experiments"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure numbers (6-12) or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier")
		queries = flag.Int("queries", 20, "queries per workload")
		seed    = flag.Int64("seed", 1, "generation seed")
		k       = flag.Int("k", 5, "top-k for timing runs")
		diam    = flag.Int("diameter", 4, "answer diameter limit for effectiveness runs")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.QueryCount = *queries
	cfg.Seed = *seed
	cfg.K = *k
	cfg.Diameter = *diam

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"6", "7", "8", "9", "10", "11", "12", "classes"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	needBundles := want["6"] || want["7"] || want["8"] || want["9"] || want["11"] || want["12"] || want["classes"]
	var imdb, dblp *experiments.Bundle
	var err error
	if needBundles {
		fmt.Fprintf(os.Stderr, "preparing datasets (scale %.2g, seed %d)...\n", cfg.Scale, cfg.Seed)
		if imdb, err = experiments.PrepareIMDB(cfg.Scale, cfg.Seed); err != nil {
			fail(err)
		}
		if dblp, err = experiments.PrepareDBLP(cfg.Scale, cfg.Seed); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "IMDB: %d nodes, %d edges; DBLP: %d nodes, %d edges\n",
			imdb.Built.G.NumNodes(), imdb.Built.G.NumEdges(),
			dblp.Built.G.NumNodes(), dblp.Built.G.NumEdges())
	}

	type figJob struct {
		id  string
		run func() (*experiments.Table, error)
	}
	jobs := []figJob{
		{"6", func() (*experiments.Table, error) { return experiments.Fig6AlphaSweep(imdb, dblp, cfg) }},
		{"7", func() (*experiments.Table, error) { return experiments.Fig7GroupSweep(imdb, dblp, cfg) }},
		{"8", func() (*experiments.Table, error) { return experiments.Fig8MRRComparison(imdb, dblp, cfg) }},
		{"9", func() (*experiments.Table, error) { return experiments.Fig9PrecisionComparison(imdb, dblp, cfg) }},
		{"10", func() (*experiments.Table, error) { return experiments.Fig10NaiveVsBB(cfg) }},
		{"11", func() (*experiments.Table, error) { return experiments.Fig11IMDBIndexTime(imdb, cfg) }},
		{"12", func() (*experiments.Table, error) { return experiments.Fig12DBLPIndexTime(dblp, cfg) }},
		{"classes", func() (*experiments.Table, error) { return experiments.ClassBreakdown(dblp, cfg) }},
	}
	ran := 0
	for _, j := range jobs {
		if !want[j.id] {
			continue
		}
		tab, err := j.run()
		if err != nil {
			fail(fmt.Errorf("figure %s: %w", j.id, err))
		}
		fmt.Println(tab)
		ran++
	}
	if ran == 0 {
		fail(fmt.Errorf("no figures selected by -fig=%q (valid: 6-12, classes)", *figs))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cirank-experiments:", err)
	os.Exit(1)
}
