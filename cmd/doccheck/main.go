// Command doccheck is a zero-dependency lint gate: it fails the build when
// any exported identifier in the listed packages lacks a doc comment. The
// repository's documentation contract (every exported symbol in the search,
// rwmp and pathindex packages explains its paper provenance and
// thread-safety) is enforced by running this from `make lint` and CI.
//
// Usage:
//
//	doccheck <dir> [<dir>...]
//
// Each dir is parsed with go/parser (comments retained); test files are
// skipped. For every exported top-level declaration — funcs, methods, types,
// and each exported const/var name — the tool requires either a doc comment
// on the declaration or, for grouped specs, on the spec or its group.
// Exported struct fields and interface methods are also checked. Exit status
// is 1 if any symbol is undocumented, with one "file:line: symbol" report
// per offender.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <dir> [<dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		offenders, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, o := range offenders {
			fmt.Println(o)
		}
		bad += len(offenders)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and returns one
// "file:line: symbol" line per undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var offenders []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		offenders = append(offenders, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return offenders, nil
}

// checkDecl reports every undocumented exported symbol introduced by one
// top-level declaration.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		// Methods on unexported receiver types are not public API; skip
		// them like golint does.
		if d.Recv != nil && len(d.Recv.List) > 0 &&
			!ast.IsExported(recvTypeName(d.Recv.List[0].Type)) {
			return
		}
		if d.Name.IsExported() && d.Doc == nil {
			report(d.Pos(), "func "+funcName(d))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
				if s.Name.IsExported() {
					checkTypeInnards(s, report)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && s.Doc == nil && d.Doc == nil {
						report(name.Pos(), declKind(d.Tok)+" "+name.Name)
					}
				}
			}
		}
	}
}

// checkTypeInnards requires doc comments on exported struct fields and
// interface methods of an exported type.
func checkTypeInnards(s *ast.TypeSpec, report func(token.Pos, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() && f.Doc == nil && f.Comment == nil {
					report(name.Pos(), "field "+s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() && m.Doc == nil && m.Comment == nil {
					report(name.Pos(), "method "+s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// funcName renders "Recv.Name" for methods and "Name" for plain funcs.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return recvTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
}

// recvTypeName unwraps pointers and generic instantiations down to the
// receiver's base identifier.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return "?"
}

// declKind maps the GenDecl token to the keyword shown in reports.
func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}
