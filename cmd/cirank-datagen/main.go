// Command cirank-datagen generates a synthetic IMDB-like or DBLP-like
// dataset (DESIGN.md §3), optionally writing the data graph to a binary
// file that the other tools and library users can reload with graph.Read,
// and printing a query workload with its ground truth.
//
// Usage:
//
//	cirank-datagen -dataset imdb -scale 2 -out imdb.cirg
//	cirank-datagen -dataset dblp -workload synthetic -queries 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cirank/internal/datagen"
)

func main() {
	var (
		dataset  = flag.String("dataset", "dblp", "dataset to generate: imdb or dblp")
		scale    = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "", "write the data graph to this file (binary format)")
		workload = flag.String("workload", "", "also print a workload: synthetic or userlog")
		queries  = flag.Int("queries", 10, "workload query count")
	)
	flag.Parse()

	var ds *datagen.Dataset
	var err error
	switch *dataset {
	case "imdb":
		ds, err = datagen.GenerateIMDB(datagen.DefaultIMDBConfig(*seed).Scale(*scale))
	case "dblp":
		ds, err = datagen.GenerateDBLP(datagen.DefaultDBLPConfig(*seed).Scale(*scale))
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fail(err)
	}
	built, err := datagen.Build(ds)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset=%s tuples=%d links=%d nodes=%d edges=%d\n",
		ds.Kind, ds.DB.NumTuples(), ds.DB.NumLinks(), built.G.NumNodes(), built.G.NumEdges())
	for _, tb := range ds.Schema.SortedTableNames() {
		fmt.Printf("  %-12s %d tuples\n", tb, ds.DB.TableSize(tb))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		n, err := built.G.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", n, *out)
	}

	if *workload != "" {
		var wcfg datagen.WorkloadConfig
		switch *workload {
		case "synthetic":
			wcfg = datagen.SyntheticConfig(*queries, *seed+1000)
		case "userlog":
			wcfg = datagen.UserLogConfig(*queries, *seed+1000)
		default:
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
		qs, err := built.GenerateWorkload(wcfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("workload (%s, %d queries):\n", *workload, len(qs))
		for i, q := range qs {
			var gold []string
			for _, v := range q.Gold.Nodes() {
				n := built.G.Node(v)
				gold = append(gold, fmt.Sprintf("%s/%s", n.Relation, n.Key))
			}
			fmt.Printf("  q%-3d %-18s terms=%q gold={%s}\n", i, q.Class, strings.Join(q.Terms, " "), strings.Join(gold, ", "))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cirank-datagen:", err)
	os.Exit(1)
}
