// Command cirank runs keyword searches over a generated dataset, showing
// CI-Rank's collective-importance ranking interactively.
//
// Usage:
//
//	cirank -dataset dblp -query "some keywords"
//	cirank -dataset imdb -scale 2           # interactive: queries from stdin
//	cirank -dataset dblp -save eng.snap     # write a snapshot and exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cirank"
	"cirank/internal/datagen"
	"cirank/internal/experiments"
	"cirank/internal/graph"
	"cirank/internal/rwmp"
	"cirank/internal/search"
	"cirank/internal/textindex"
)

func main() {
	var (
		dataset = flag.String("dataset", "dblp", "dataset to generate: imdb or dblp")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed    = flag.Int64("seed", 1, "generation seed")
		query   = flag.String("query", "", "one-shot query (interactive stdin mode if empty)")
		k       = flag.Int("k", 5, "number of answers")
		diam    = flag.Int("diameter", 4, "answer diameter limit D")
		noIndex = flag.Bool("noindex", false, "disable the star index")
		suggest = flag.Int("suggest", 3, "print this many example queries on startup")
		dotFile = flag.String("dot", "", "write the top answer of each query to this Graphviz file")
		workers = flag.Int("workers", 0, "goroutines per query (0 = GOMAXPROCS, 1 = sequential)")
		noCache = flag.Bool("nocache", false, "disable the RWMP score cache")
		qTime   = flag.Duration("timeout", 0, "per-query deadline (0 = none); an expired query prints its best answers so far")
		save    = flag.String("save", "", "build the engine through the public API, write a v2 snapshot to this file, and exit")
	)
	flag.Parse()

	if *save != "" {
		if err := buildAndSave(*dataset, *scale, *seed, *workers, *save); err != nil {
			fail(err)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "generating %s dataset (scale %.2g)...\n", *dataset, *scale)
	var bundle *experiments.Bundle
	var err error
	switch *dataset {
	case "imdb":
		bundle, err = experiments.PrepareIMDB(*scale, *seed)
	case "dblp":
		bundle, err = experiments.PrepareDBLP(*scale, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fail(err)
	}
	m, err := bundle.DefaultModel()
	if err != nil {
		fail(err)
	}
	s := search.New(m)
	opts := search.Options{K: *k, Diameter: *diam, MaxExpansions: 200000, Workers: *workers}
	if !*noCache {
		opts.Scores = rwmp.NewScoreCache(m, 0)
	}
	if !*noIndex {
		idx, err := bundle.StarIndex(m, *diam)
		if err != nil {
			fail(err)
		}
		opts.Index = idx
	}
	fmt.Fprintf(os.Stderr, "ready: %d nodes, %d edges\n", bundle.Built.G.NumNodes(), bundle.Built.G.NumEdges())
	if *suggest > 0 {
		if qs, err := bundle.Built.GenerateWorkload(datagen.SyntheticConfig(*suggest, *seed+9)); err == nil {
			for _, q := range qs {
				fmt.Fprintf(os.Stderr, "try: %s\n", strings.Join(q.Terms, " "))
			}
		}
	}

	run := func(text string) {
		terms := textindex.Tokenize(text)
		if len(terms) == 0 {
			return
		}
		start := time.Now()
		ctx := context.Background()
		if *qTime > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *qTime)
			defer cancel()
		}
		answers, stats, err := s.TopKContext(ctx, terms, opts)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if stats.Interrupted {
			fmt.Printf("deadline %v hit; showing best answers found so far\n", *qTime)
		}
		if *dotFile != "" && len(answers) > 0 {
			if err := writeDot(*dotFile, bundle, answers[0], terms); err != nil {
				fmt.Fprintln(os.Stderr, "dot:", err)
			}
		}
		fmt.Printf("%d answers in %v (expanded %d candidates)\n", len(answers), time.Since(start).Round(time.Microsecond), stats.Expanded)
		for i, a := range answers {
			fmt.Printf("#%d score=%.4g\n", i+1, a.Score)
			for _, v := range a.Tree.Nodes() {
				n := bundle.Built.G.Node(v)
				marker := "  "
				if bundle.Built.Ix.QueryMatchCount(v, terms) > 0 {
					marker = "* "
				}
				fmt.Printf("   %s[%s %s] %s\n", marker, n.Relation, n.Key, n.Text)
			}
		}
	}

	if *query != "" {
		run(*query)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("query> ")
	for sc.Scan() {
		run(sc.Text())
		fmt.Print("query> ")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cirank:", err)
	os.Exit(1)
}

// buildAndSave generates the dataset, builds an engine through the public
// builder API (the same graph/config an embedding application would get)
// and writes its snapshot to path, ready for cirank-server -snapshot.
func buildAndSave(dataset string, scale float64, seed int64, workers int, path string) error {
	var (
		ds  *datagen.Dataset
		b   *cirank.Builder
		err error
	)
	switch dataset {
	case "imdb":
		ds, err = datagen.GenerateIMDB(datagen.DefaultIMDBConfig(seed).Scale(scale))
		b = cirank.NewIMDBBuilder()
	case "dblp":
		ds, err = datagen.GenerateDBLP(datagen.DefaultDBLPConfig(seed).Scale(scale))
		b = cirank.NewDBLPBuilder()
	default:
		return fmt.Errorf("unknown dataset %q (want imdb or dblp)", dataset)
	}
	if err != nil {
		return err
	}
	if err := ds.Replay(b.InsertEntity, b.Relate); err != nil {
		return err
	}
	cfg := cirank.DefaultConfig()
	cfg.Workers = workers
	eng, err := b.Build(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "snapshot of %d nodes, %d edges written to %s\n", eng.NumNodes(), eng.NumEdges(), path)
	return nil
}

// writeDot renders the top answer as a Graphviz graph.
func writeDot(path string, bundle *experiments.Bundle, top search.Answer, terms []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	g := bundle.Built.G
	err = top.Tree.WriteDOT(f,
		func(v graph.NodeID) string {
			n := g.Node(v)
			return fmt.Sprintf("[%s %s]\n%s", n.Relation, n.Key, n.Text)
		},
		func(v graph.NodeID) bool {
			return bundle.Built.Ix.QueryMatchCount(v, terms) > 0
		})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
