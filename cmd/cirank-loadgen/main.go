// Command cirank-loadgen drives the HTTP serving stack (internal/server)
// with the same Zipf-skewed AOL-style query stream the engine benchmarks
// replay, and reports what the serving layer — singleflight coalescing, the
// generation-keyed result cache, cost-based admission — adds on top of raw
// engine throughput. It is the measurement harness behind the tracked
// BENCH_serve.json trajectory; internal/servebench does the work, this
// command is the flag front end.
//
// Usage:
//
//	cirank-loadgen -out BENCH_serve.json
//	cirank-loadgen -clients 16 -duration 5s -out -
//	cirank-loadgen -arms custom -qps 500 -warm -reload-every 1s -out -
//
// The default run measures the four tracked arms against one generated
// fixture (dataset → public build → snapshot → fresh server per arm):
//
//	serve-nocache  result cache and coalescing off; every request evaluates.
//	serve-cached   full serving stack, cache warmed by one unmeasured
//	               stream pass — the steady state of a long-running server.
//	serve-reload   full stack with snapshot hot reloads landing during the
//	               measured window; its stale and failed columns must be
//	               zero (the serving stack's correctness-under-churn
//	               guarantee, also enforced under -race by the servebench
//	               and server package tests).
//	serve-tenants  the snapshot served as three named tenants with the
//	               stream spread across them, hot reloads hitting only
//	               tenant t0 — stale/failed must stay zero on every tenant
//	               (stale_other/failed_other isolate the non-reloaded ones).
//
// -arms tenants runs just the mixed-tenant arm, sized by -tenants and
// -reload-tenant. -arms custom instead runs a single arm shaped by the
// remaining flags: -cache-off/-coalesce-off toggle the serving caches,
// -warm pre-runs the stream, -qps switches from closed-loop (each of
// -clients keeps one request in flight) to open-loop (requests start at the
// target rate no matter how slowly they answer, so queueing shows up as
// latency), -reload-every hot-reloads the snapshot at that period, and
// -tenants/-reload-tenant shape the multi-tenant split.
//
// The report format is documented in the internal/servebench package
// comment; cirank-bench -mode serve emits the same document and its
// -compare flag diffs runs cell by cell.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cirank/internal/searchbench"
	"cirank/internal/servebench"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_serve.json", "output path ('-' for stdout)")
		dataset   = flag.String("dataset", "dblp", "dataset to generate: imdb or dblp")
		scale     = flag.Float64("scale", 0.25, "dataset scale multiplier")
		seed      = flag.Int64("seed", -1, "generation seed (-1 picks the dataset's proven pair)")
		querySeed = flag.Int64("queryseed", -1, "workload seed (-1 picks the dataset's proven pair)")
		k         = flag.Int("k", 10, "answer count per query")
		clients   = flag.Int("clients", 8, "closed-loop client count (also sizes the transport in open loop)")
		duration  = flag.Duration("duration", 2*time.Second, "measured window per arm")
		arms      = flag.String("arms", "tracked", "tracked (the four BENCH_serve.json arms), tenants (the mixed-tenant arm alone) or custom (one arm from the flags below)")

		stage       = flag.String("stage", "serve-custom", "custom arm: stage name in the report")
		cacheOff    = flag.Bool("cache-off", false, "custom arm: disable the result cache")
		coalesceOff = flag.Bool("coalesce-off", false, "custom arm: disable singleflight coalescing")
		warm        = flag.Bool("warm", false, "custom arm: replay the stream once, unmeasured, before the window")
		qps         = flag.Float64("qps", 0, "custom arm: open-loop target arrival rate (0 = closed loop)")
		reloadEvery = flag.Duration("reload-every", 0, "custom arm: hot-reload the snapshot at this period (0 = never)")
		timeout     = flag.Duration("timeout", 0, "custom arm: per-query timeout parameter sent to the server (0 = server default)")
		tenants     = flag.Int("tenants", 3, "tenants/custom arm: named tenant count the stream is spread across (1 = single-tenant)")
		reloadT     = flag.String("reload-tenant", "t0", "tenants/custom arm: the one tenant hot reloads target")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}

	defData, defQuery := searchbench.DefaultSeeds(*dataset)
	if *seed < 0 {
		*seed = defData
	}
	if *querySeed < 0 {
		*querySeed = defQuery
	}

	var armList []servebench.Arm
	switch *arms {
	case "tracked":
		armList = servebench.TrackedArms(*clients, *duration)
	case "tenants":
		armList = []servebench.Arm{{
			Stage:        "serve-tenants",
			Warm:         true,
			Clients:      *clients,
			Duration:     *duration,
			ReloadEvery:  *duration / 4,
			Tenants:      *tenants,
			ReloadTenant: *reloadT,
		}}
	case "custom":
		armList = []servebench.Arm{{
			Stage:        *stage,
			CacheOff:     *cacheOff,
			CoalesceOff:  *coalesceOff,
			Warm:         *warm,
			Clients:      *clients,
			TargetQPS:    *qps,
			Duration:     *duration,
			ReloadEvery:  *reloadEvery,
			Timeout:      *timeout,
			Tenants:      *tenants,
			ReloadTenant: *reloadT,
		}}
	default:
		fail(fmt.Errorf("bad -arms %q: want tracked, tenants or custom", *arms))
	}

	dir, err := os.MkdirTemp("", "cirank-loadgen-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	progress := func(line string) { fmt.Fprintf(os.Stderr, "cirank-loadgen: %s\n", line) }
	f, err := servebench.NewFixture(dir, *dataset, *scale, *seed, *querySeed, *k)
	if err != nil {
		fail(err)
	}
	progress(fmt.Sprintf("%s scale %g: %d nodes, %d edges, %d distinct queries, stream of %d",
		*dataset, *scale, f.Nodes, f.Edges, len(f.Queries), len(f.Stream)))

	cells, err := f.RunArms(armList, *k, progress)
	if err != nil {
		fail(err)
	}
	rep := servebench.NewReport(*dataset, *seed, *querySeed)
	rep.Results = cells
	if err := rep.Write(*out); err != nil {
		fail(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "cirank-loadgen: wrote %s (%d results)\n", *out, len(rep.Results))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "cirank-loadgen: %v\n", err)
	os.Exit(1)
}
