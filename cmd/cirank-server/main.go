// Command cirank-server serves CI-Rank keyword search over HTTP: it
// generates a synthetic dataset, builds a query engine, and exposes the
// internal/server endpoints until SIGINT/SIGTERM triggers a graceful drain.
//
// Usage:
//
//	cirank-server -dataset dblp -scale 1 -addr :8080
//	curl 'localhost:8080/search?q=some+keywords&k=5&timeout=2s'
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cirank"
	"cirank/internal/datagen"
	"cirank/internal/relational"
	"cirank/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataset  = flag.String("dataset", "dblp", "dataset to generate: imdb or dblp")
		scale    = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed     = flag.Int64("seed", 1, "generation seed")
		k        = flag.Int("k", 5, "default answers per query")
		maxK     = flag.Int("maxk", 100, "largest k a request may ask for")
		timeout  = flag.Duration("timeout", 5*time.Second, "default per-query deadline")
		maxTime  = flag.Duration("maxtimeout", 30*time.Second, "cap on the per-query deadline")
		inflight = flag.Int("inflight", 0, "max concurrent queries (0 = 2x GOMAXPROCS)")
		maxExp   = flag.Int("maxexpansions", 200000, "branch-and-bound expansion cap per query (-1 = unlimited)")
		workers  = flag.Int("workers", 0, "engine worker goroutines per query (0 = GOMAXPROCS)")
	)
	flag.Parse()

	eng, err := buildEngine(*dataset, *scale, *seed, *workers)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "cirank-server: engine ready: %d nodes, %d edges\n", eng.NumNodes(), eng.NumEdges())
	fmt.Fprintf(os.Stderr, "cirank-server: build: %v\n", eng.BuildStats())

	srv, err := server.New(server.Config{
		Engine:         eng,
		DefaultK:       *k,
		MaxK:           *maxK,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTime,
		MaxInFlight:    *inflight,
		MaxExpansions:  *maxExp,
	})
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Serve until a termination signal, then drain in-flight queries: each
	// holds a context derived from its request, so Shutdown's deadline also
	// bounds how long a straggler may keep computing.
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cirank-server: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cirank-server: %v: draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *maxTime)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("shutdown: %w", err))
		}
	}
	fmt.Fprintln(os.Stderr, "cirank-server: bye")
}

// buildEngine generates the requested dataset and replays it through the
// public builder, so the server exercises the same API an embedding
// application would.
func buildEngine(dataset string, scale float64, seed int64, workers int) (*cirank.Engine, error) {
	var (
		ds  *datagen.Dataset
		b   *cirank.Builder
		err error
	)
	switch dataset {
	case "imdb":
		ds, err = datagen.GenerateIMDB(datagen.DefaultIMDBConfig(seed).Scale(scale))
		b = cirank.NewIMDBBuilder()
	case "dblp":
		ds, err = datagen.GenerateDBLP(datagen.DefaultDBLPConfig(seed).Scale(scale))
		b = cirank.NewDBLPBuilder()
	default:
		return nil, fmt.Errorf("unknown dataset %q (want imdb or dblp)", dataset)
	}
	if err != nil {
		return nil, err
	}
	for _, table := range ds.Schema.Tables {
		for _, key := range ds.DB.Keys(table) {
			t, ok := ds.DB.Lookup(table, key)
			if !ok {
				return nil, fmt.Errorf("dataset lookup lost %s/%s", table, key)
			}
			if err := b.InsertEntity(table, t.Key, t.Text, t.EntityKey); err != nil {
				return nil, err
			}
		}
	}
	var relErr error
	ds.DB.EachLink(func(rel relational.Relationship, fromKey, toKey string) {
		if relErr == nil {
			relErr = b.Relate(rel.Name, fromKey, toKey)
		}
	})
	if relErr != nil {
		return nil, relErr
	}
	cfg := cirank.DefaultConfig()
	cfg.Workers = workers
	return b.Build(cfg)
}

func fail(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "cirank-server:", err)
	os.Exit(1)
}
