// Command cirank-server serves CI-Rank keyword search over HTTP: it builds
// a query engine — from a generated synthetic dataset, or zero-copy from a
// snapshot file — and exposes the internal/server endpoints until
// SIGINT/SIGTERM triggers a graceful drain.
//
// Usage:
//
//	cirank-server -dataset dblp -scale 1 -addr :8080
//	curl 'localhost:8080/v1/search?q=some+keywords&k=5&timeout=2s'
//	curl -X POST localhost:8080/v1/search -d '{"queries": [{"q": "ullman"}, {"q": "some keywords", "k": 3}]}'
//	curl localhost:8080/v1/healthz
//	curl localhost:8080/v1/metrics
//
// The versioned /v1 API (docs/api.md) is the contract; the original
// unversioned paths still answer, marked with a Deprecation header. The
// serving stack — singleflight coalescing, the generation-keyed result
// cache, cost-based admission — is tunable with -coalesce, -result-cache,
// -admission-budget and -max-batch.
//
// Snapshot workflow — build once offline, serve with instant startup, and
// hot-reload in place after writing a fresh snapshot to the same path:
//
//	cirank-server -dataset dblp -scale 4 -save-snapshot eng.snap
//	cirank-server -snapshot eng.snap -addr :8080
//	curl -X POST localhost:8080/v1/admin/reload
//
// Multi-tenant serving — one process, several named corpora, each behind
// its own result cache, coalescing group and weighted-fair admission share:
//
//	cirank-server -tenants tenants.json -addr :8080
//	curl 'localhost:8080/v1/search?q=ullman&tenant=books'
//	curl -X POST 'localhost:8080/v1/admin/reload?tenant=books'
//
// The -tenants file maps names to snapshots (or shard-set base paths with
// "sharded": true) plus optional per-tenant overrides:
//
//	{"tenants": [
//	  {"name": "books", "snapshot": "books.snap", "admission_weight": 2},
//	  {"name": "papers", "snapshot": "papers.set", "sharded": true,
//	   "result_cache": 4096}
//	]}
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cirank"
	"cirank/internal/datagen"
	"cirank/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataset  = flag.String("dataset", "dblp", "dataset to generate: imdb or dblp")
		scale    = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed     = flag.Int64("seed", 1, "generation seed")
		k        = flag.Int("k", 5, "default answers per query")
		maxK     = flag.Int("maxk", 100, "largest k a request may ask for")
		timeout  = flag.Duration("timeout", 5*time.Second, "default per-query deadline")
		maxTime  = flag.Duration("maxtimeout", 30*time.Second, "cap on the per-query deadline")
		inflight = flag.Int("inflight", 0, "max concurrent queries (0 = 2x GOMAXPROCS)")
		maxExp   = flag.Int("maxexpansions", 200000, "branch-and-bound expansion cap per query (-1 = unlimited)")
		workers  = flag.Int("workers", 0, "engine worker goroutines per query (0 = GOMAXPROCS)")
		snapshot = flag.String("snapshot", "", "serve from this snapshot file (mmap-opened; enables POST /admin/reload) instead of generating a dataset")
		tenants  = flag.String("tenants", "", "serve several named tenants from this JSON config (see the package docs; mutually exclusive with -snapshot and -shards)")
		saveSnap = flag.String("save-snapshot", "", "build the dataset engine, write a snapshot to this file, and exit")
		shards   = flag.Int("shards", 1, "partition the engine into this many shards behind the scatter-gather coordinator (1 = single engine)")
		radius   = flag.Int("shard-radius", cirank.DefaultShardRadius, "halo radius for -shards partitions; answers stay exact up to diameter 2*radius")

		resultCache = flag.Int("result-cache", 0, "result-cache entries per generation (0 = default 1024, -1 = off)")
		coalesce    = flag.Bool("coalesce", true, "coalesce identical in-flight queries (singleflight)")
		admission   = flag.Int64("admission-budget", 0, "cost-based admission budget in posting-entry units (0 = derived from GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 0, "max queries per POST /v1/search batch (0 = default 16)")
	)
	flag.Parse()

	if *shards < 1 {
		fail(fmt.Errorf("bad -shards %d: want at least 1", *shards))
	}

	if *saveSnap != "" {
		eng, err := buildEngine(*dataset, *scale, *seed, *workers)
		if err != nil {
			fail(err)
		}
		if *shards > 1 {
			engines, err := cirank.ShardEngines(eng, *shards, *radius)
			if err != nil {
				fail(err)
			}
			if err := cirank.SaveShardSet(engines, *saveSnap); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "cirank-server: shard set of %d nodes, %d edges written to %s.shard0..shard%d\n",
				eng.NumNodes(), eng.NumEdges(), *saveSnap, *shards-1)
			return
		}
		if err := saveSnapshot(eng, *saveSnap); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "cirank-server: snapshot of %d nodes, %d edges written to %s\n",
			eng.NumNodes(), eng.NumEdges(), *saveSnap)
		return
	}

	cfg := server.Config{
		DefaultK:        *k,
		MaxK:            *maxK,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTime,
		MaxInFlight:     *inflight,
		MaxExpansions:   *maxExp,
		SnapshotPath:    *snapshot,
		ResultCacheSize: *resultCache,
		CoalesceEnabled: server.Bool(*coalesce),
		AdmissionBudget: *admission,
		MaxBatch:        *maxBatch,
	}
	if *tenants != "" {
		if *snapshot != "" || *shards > 1 {
			fail(fmt.Errorf("-tenants is mutually exclusive with -snapshot and -shards"))
		}
		cfg.SnapshotPath = ""
		list, err := loadTenants(*tenants)
		if err != nil {
			fail(err)
		}
		cfg.Tenants = list
	} else if *shards > 1 {
		// Sharded serving: open the set written by -save-snapshot -shards N,
		// or partition a freshly built engine in place. The snapshot path
		// stays the set's base path, so /v1/admin/reload (whole set or
		// ?shard=i) finds the members.
		if *snapshot != "" {
			se, err := cirank.OpenShardSet(*snapshot)
			if err != nil {
				fail(err)
			}
			cfg.Shards = se.Engines()
		} else {
			eng, err := buildEngine(*dataset, *scale, *seed, *workers)
			if err != nil {
				fail(err)
			}
			engines, err := cirank.ShardEngines(eng, *shards, *radius)
			if err != nil {
				fail(err)
			}
			cfg.Shards = engines
		}
		nodes, edges, setRadius := 0, 0, *radius
		if info, ok := cfg.Shards[0].ShardInfo(); ok {
			nodes, edges, setRadius = info.TotalNodes, info.TotalEdges, info.Radius
		}
		fmt.Fprintf(os.Stderr, "cirank-server: sharded engine ready: %d shards (radius %d), %d nodes, %d edges\n",
			len(cfg.Shards), setRadius, nodes, edges)
	} else {
		var (
			eng *cirank.Engine
			err error
		)
		if *snapshot != "" {
			eng, err = cirank.Open(*snapshot)
		} else {
			eng, err = buildEngine(*dataset, *scale, *seed, *workers)
		}
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "cirank-server: engine ready: %d nodes, %d edges\n", eng.NumNodes(), eng.NumEdges())
		fmt.Fprintf(os.Stderr, "cirank-server: build: %v\n", eng.BuildStats())
		cfg.Engine = eng
	}

	srv, err := server.New(cfg)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Serve until a termination signal, then drain in-flight queries: each
	// holds a context derived from its request, so Shutdown's deadline also
	// bounds how long a straggler may keep computing.
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cirank-server: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cirank-server: %v: draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *maxTime)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("shutdown: %w", err))
		}
	}
	fmt.Fprintln(os.Stderr, "cirank-server: bye")
}

// buildEngine generates the requested dataset and replays it through the
// public builder, so the server exercises the same API an embedding
// application would.
func buildEngine(dataset string, scale float64, seed int64, workers int) (*cirank.Engine, error) {
	var (
		ds  *datagen.Dataset
		b   *cirank.Builder
		err error
	)
	switch dataset {
	case "imdb":
		ds, err = datagen.GenerateIMDB(datagen.DefaultIMDBConfig(seed).Scale(scale))
		b = cirank.NewIMDBBuilder()
	case "dblp":
		ds, err = datagen.GenerateDBLP(datagen.DefaultDBLPConfig(seed).Scale(scale))
		b = cirank.NewDBLPBuilder()
	default:
		return nil, fmt.Errorf("unknown dataset %q (want imdb or dblp)", dataset)
	}
	if err != nil {
		return nil, err
	}
	if err := ds.Replay(b.InsertEntity, b.Relate); err != nil {
		return nil, err
	}
	cfg := cirank.DefaultConfig()
	cfg.Workers = workers
	return b.Build(cfg)
}

// tenantEntry is one tenant of the -tenants JSON config.
type tenantEntry struct {
	// Name is the tenant's wire name (the tenant request parameter).
	Name string `json:"name"`
	// Snapshot is the tenant's snapshot file, or its shard-set base path
	// when Sharded is true. Hot reload re-opens the same path.
	Snapshot string `json:"snapshot"`
	// Sharded opens Snapshot as a shard-set base path (written by
	// -save-snapshot -shards N) instead of a single snapshot file.
	Sharded bool `json:"sharded"`
	// ResultCache overrides -result-cache for this tenant (0 inherits,
	// negative disables).
	ResultCache int `json:"result_cache"`
	// AdmissionWeight is the tenant's weighted-fair share of the global
	// admission budget (0 means 1).
	AdmissionWeight int `json:"admission_weight"`
}

// loadTenants reads the -tenants config and opens every tenant's corpus;
// validation beyond opening (name shape, duplicates) is server.New's.
func loadTenants(path string) ([]server.TenantConfig, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file struct {
		Tenants []tenantEntry `json:"tenants"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(file.Tenants) == 0 {
		return nil, fmt.Errorf("%s: no tenants configured", path)
	}
	var out []server.TenantConfig
	for _, e := range file.Tenants {
		if e.Snapshot == "" {
			return nil, fmt.Errorf("%s: tenant %q: snapshot is required", path, e.Name)
		}
		tc := server.TenantConfig{
			Name:            e.Name,
			SnapshotPath:    e.Snapshot,
			ResultCacheSize: e.ResultCache,
			AdmissionWeight: e.AdmissionWeight,
		}
		if e.Sharded {
			se, err := cirank.OpenShardSet(e.Snapshot)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: %w", e.Name, err)
			}
			tc.Shards = se.Engines()
		} else {
			eng, err := cirank.Open(e.Snapshot)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: %w", e.Name, err)
			}
			tc.Engine = eng
		}
		nodes, edges := 0, 0
		if tc.Engine != nil {
			nodes, edges = tc.Engine.NumNodes(), tc.Engine.NumEdges()
		} else if info, ok := tc.Shards[0].ShardInfo(); ok {
			nodes, edges = info.TotalNodes, info.TotalEdges
		}
		fmt.Fprintf(os.Stderr, "cirank-server: tenant %s ready: %d nodes, %d edges\n", e.Name, nodes, edges)
		out = append(out, tc)
	}
	return out, nil
}

// saveSnapshot writes the engine's v2 snapshot to path.
func saveSnapshot(eng *cirank.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "cirank-server:", err)
	os.Exit(1)
}
