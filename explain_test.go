package cirank

import (
	"math"
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	res, err := eng.Search("papakonstantinou ullman", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatal("no results")
	}
	ex, err := eng.Explain(res[0], "papakonstantinou ullman")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Nodes) != len(res[0].Rows) {
		t.Fatalf("node details %d != rows %d", len(ex.Nodes), len(res[0].Rows))
	}
	// Two matched sources → two directed flows.
	if len(ex.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(ex.Flows))
	}
	// The answer score is the mean of the matched nodes' scores.
	sum, matched := 0.0, 0
	for i, n := range ex.Nodes {
		if res[0].Rows[i].Matched {
			sum += n.Score
			matched++
			if n.Generation <= 0 {
				t.Errorf("matched node %d has zero generation", i)
			}
		} else {
			if n.Score != 0 {
				t.Errorf("free node %d has score %g", i, n.Score)
			}
			if n.Dampening <= 0 || n.Dampening >= 1 {
				t.Errorf("free node %d dampening %g outside (0,1)", i, n.Dampening)
			}
		}
	}
	if matched == 0 {
		t.Fatal("no matched nodes")
	}
	if got := sum / float64(matched); math.Abs(got-ex.Score) > 1e-9 {
		t.Errorf("mean node score %g != answer score %g", got, ex.Score)
	}
	// Every flow is positive and bounded by its source's generation.
	for _, f := range ex.Flows {
		if f.Delivered <= 0 {
			t.Errorf("flow %d→%d delivered %g", f.From, f.To, f.Delivered)
		}
		if f.Delivered > ex.Nodes[f.From].Generation+1e-9 {
			t.Errorf("flow %d→%d exceeds generation", f.From, f.To)
		}
	}
	// The rendering mentions the pieces.
	out := ex.String()
	for _, want := range []string{"answer score", "importance=", "flow"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestExplainRejectsForeignResult(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	if _, err := eng.Explain(Result{Score: 1}, "x"); err == nil {
		t.Error("foreign result accepted")
	}
}
