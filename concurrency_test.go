package cirank

import (
	"fmt"
	"sync"
	"testing"
)

// concurrencyEngine builds a moderately connected DBLP-style engine with the
// parallel/caching knobs on.
func concurrencyEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	b := NewDBLPBuilder()
	for i := 0; i < 40; i++ {
		b.MustInsert("Author", fmt.Sprintf("a%d", i), fmt.Sprintf("author number%d", i))
	}
	for i := 0; i < 90; i++ {
		key := fmt.Sprintf("p%d", i)
		b.MustInsert("Paper", key, fmt.Sprintf("paper title number%d", i))
		b.MustRelate("written_by", key, fmt.Sprintf("a%d", i%40))
		b.MustRelate("written_by", key, fmt.Sprintf("a%d", (i+7)%40))
		if i > 0 {
			b.MustRelate("cites", key, fmt.Sprintf("p%d", i/2))
		}
	}
	eng, err := b.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineSearchConcurrent exercises the documented Engine contract —
// Search is safe for concurrent use — under the parallel evaluator and the
// shared score/bound caches. Run with -race (the CI workflow and `make
// race` do) this is the synchronization certificate; in any mode it also
// checks all goroutines observe identical rankings.
func TestEngineSearchConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	eng := concurrencyEngine(t, cfg)
	queries := []string{
		"number3 number10",
		"number1 number2",
		"author paper",
		"number5",
	}
	reference := make([][]Result, len(queries))
	for i, q := range queries {
		res, err := eng.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		reference[i] = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				res, err := eng.Search(q, 5)
				if err != nil {
					errs <- err
					return
				}
				if len(res) != len(reference[i]) {
					errs <- fmt.Errorf("query %q: %d results, want %d", q, len(res), len(reference[i]))
					return
				}
				for j := range res {
					if res[j].Score != reference[i][j].Score {
						errs <- fmt.Errorf("query %q rank %d: score %v, want %v",
							q, j, res[j].Score, reference[i][j].Score)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	cs := eng.CacheStats()
	if cs.ScoreHits == 0 {
		t.Errorf("repeated identical queries produced no score-cache hits: %+v", cs)
	}
}

// TestCacheDisabled checks the CacheSize < 0 escape hatch still searches
// correctly and reports idle caches.
func TestCacheDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSize = -1
	cfg.Workers = 2
	eng := concurrencyEngine(t, cfg)
	res, err := eng.Search("number3 number10", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results with caching disabled")
	}
	if cs := eng.CacheStats(); cs != (CacheStats{}) {
		t.Errorf("disabled caches reported activity: %+v", cs)
	}
}

// TestWorkerCountsAgreeEndToEnd pins the public API to the determinism
// guarantee: the same engine data searched with Workers 1, 2 and 8 must
// return identical rankings and scores.
func TestWorkerCountsAgreeEndToEnd(t *testing.T) {
	var reference []Result
	for _, workers := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		eng := concurrencyEngine(t, cfg)
		res, err := eng.Search("number3 number10", 5)
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = res
			continue
		}
		if len(res) != len(reference) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(reference))
		}
		for j := range res {
			if res[j].Score != reference[j].Score {
				t.Errorf("workers=%d rank %d: score %v, want %v", workers, j, res[j].Score, reference[j].Score)
			}
			if fmt.Sprint(res[j].Rows) != fmt.Sprint(reference[j].Rows) {
				t.Errorf("workers=%d rank %d: rows differ", workers, j)
			}
		}
	}
}
