package cirank

import (
	"errors"

	"cirank/internal/search"
)

// Sentinel errors of the query API. They are shared with the internal
// search layer, so errors.Is classifies a failure no matter which layer
// produced it; returned errors usually wrap a sentinel together with the
// offending value.
var (
	// ErrBadK reports a search request with k < 1.
	ErrBadK = search.ErrBadK
	// ErrEmptyQuery reports a query with no usable terms (empty input, or
	// input reduced to nothing by tokenization).
	ErrEmptyQuery = search.ErrEmptyQuery
	// ErrBadOptions reports an invalid SearchOptions field (negative
	// Diameter, Workers or MaxExpansions below -1, or an oversized query).
	ErrBadOptions = search.ErrBadOptions
	// ErrDeadline reports that the context passed to SearchContext or
	// SearchTermsContext was already cancelled or past its deadline before
	// the query started, so no work was done. A context that expires
	// mid-query does NOT produce this error: the query returns the best
	// answers found so far with SearchStats.Interrupted set. Errors
	// wrapping ErrDeadline also wrap the context's own error, so
	// errors.Is(err, context.DeadlineExceeded) works too.
	ErrDeadline = search.ErrDeadline
	// ErrBadConfig reports an invalid Config field at engine build time —
	// in particular an explicit Alpha: 0 or Teleport: 0, which earlier
	// versions silently rewrote to the paper defaults.
	ErrBadConfig = errors.New("cirank: invalid config")
	// ErrShardSet reports an invalid shard-engine set: engines that are not
	// shards, a wrong count, out-of-order indices, mismatched plans, or
	// owned ranges that fail to partition the ID space. Returned by
	// NewSharded, ShardEngines and OpenShardSet.
	ErrShardSet = errors.New("cirank: invalid shard set")
	// ErrBadSnapshot reports a snapshot that LoadEngine or Open rejected:
	// wrong magic, unsupported version, a truncated or corrupt section
	// table, a checksum mismatch, or section contents that fail structural
	// validation. Every decode-path error wraps this sentinel, so callers
	// distinguish "the file is bad" from I/O failures with errors.Is.
	ErrBadSnapshot = errors.New("cirank: invalid snapshot")
)
