package cirank

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cirank/internal/graph"
	"cirank/internal/pathindex"
	"cirank/internal/relational"
	"cirank/internal/rwmp"
	"cirank/internal/search"
	"cirank/internal/shard"
	"cirank/internal/textindex"
)

// DefaultShardRadius is the halo depth ShardEngines uses when radius is 0.
// A radius-r shard set answers diameters up to 2·r exactly, so 3 covers the
// serving layer's diameter ceiling of 6 (DefaultConfig's IndexDepth).
const DefaultShardRadius = 3

// shardMeta records the slice of a partition plan one shard engine serves.
// It travels with the engine through snapshots (the "shard" section) so a
// reloaded shard set can be revalidated and recomposed.
type shardMeta struct {
	// Index and Count place the shard in its set.
	Index, Count int
	// Radius is the plan's halo depth; searches through the set are exact
	// for diameters up to 2·Radius.
	Radius int
	// Owned lists the shard's owned node IDs, ascending. The owned sets of
	// a composed set are disjoint and cover the whole ID space. Under a
	// locality plan the set is not an interval; Lo and Hi only bound it.
	Owned []graph.NodeID
	// Lo and Hi delimit the half-open span [Lo, Hi) bounding Owned (equal
	// for an empty owned set). Legacy snapshots without an explicit owned
	// list carry only the span, and ownership is the whole interval.
	Lo, Hi graph.NodeID
	// TotalNodes and TotalEdges are the whole (pre-partitioning) graph's
	// sizes, reported by the coordinator as the set's corpus size.
	TotalNodes, TotalEdges int
}

// ShardInfo describes the partition slice a shard engine serves; see
// Engine.ShardInfo.
type ShardInfo struct {
	// Index and Count place the shard in its set.
	Index, Count int
	// Radius is the halo depth of the shard's plan.
	Radius int
	// OwnedLo and OwnedHi delimit the half-open node-ID span [OwnedLo,
	// OwnedHi) bounding the shard's owned set. Under the default locality
	// strategy the owned set is not an interval — OwnedCount says how many
	// IDs inside the span the shard actually owns; the owned sets of a set
	// partition the ID space.
	OwnedLo, OwnedHi int
	// OwnedCount is the number of nodes the shard owns.
	OwnedCount int
	// TotalNodes and TotalEdges are the sizes of the whole graph the shard
	// was partitioned from.
	TotalNodes, TotalEdges int
}

// ShardInfo reports the engine's place in a partitioned shard set, and
// whether it belongs to one at all (engines built by Builder.Build or loaded
// from an unpartitioned snapshot do not).
func (e *Engine) ShardInfo() (ShardInfo, bool) {
	if e.shard == nil {
		return ShardInfo{}, false
	}
	m := e.shard
	return ShardInfo{
		Index: m.Index, Count: m.Count, Radius: m.Radius,
		OwnedLo: int(m.Lo), OwnedHi: int(m.Hi), OwnedCount: len(m.Owned),
		TotalNodes: m.TotalNodes, TotalEdges: m.TotalEdges,
	}, true
}

// ShardStrategy selects how ShardEngines assigns node ownership; see the
// internal/shard package for the mechanics.
type ShardStrategy int

const (
	// ShardLocality (the default) chunks a Cuthill–McKee breadth-first
	// traversal of the graph, so each shard owns one tightly connected
	// region and the radius-r halo it must replicate stays small.
	ShardLocality ShardStrategy = iota
	// ShardContiguous is the legacy raw-ID range split. It survives for
	// halo before/after comparisons; rankings are identical under both.
	ShardContiguous
)

// String names the strategy as the benchmark output spells it.
func (s ShardStrategy) String() string {
	switch s {
	case ShardLocality:
		return "locality"
	case ShardContiguous:
		return "contiguous"
	default:
		return "unknown"
	}
}

// internalStrategy maps the public strategy onto the shard package's.
func (s ShardStrategy) internal() (shard.Strategy, error) {
	switch s {
	case ShardLocality:
		return shard.Locality, nil
	case ShardContiguous:
		return shard.Contiguous, nil
	default:
		return 0, fmt.Errorf("%w: unknown shard strategy %d", ErrShardSet, int(s))
	}
}

// ShardEngines partitions e into count shard engines with the given halo
// radius (0 means DefaultShardRadius) under the default locality strategy.
// Each returned engine is a complete, independently usable Engine — it can
// be queried, saved and reopened like any other — serving the
// member-induced subgraph of its slice of the plan (owned set plus halo;
// see internal/shard). The shards reuse e's global importance and dampening
// vectors, which is what makes their answer scores bitwise equal to e's;
// compose them with NewSharded to answer queries with e's exact rankings.
// e itself is not modified or consumed.
func ShardEngines(e *Engine, count, radius int) ([]*Engine, error) {
	return ShardEnginesContext(context.Background(), e, count, radius)
}

// ShardEnginesContext is ShardEngines bounded by ctx: cancellation aborts
// the per-shard index builds with an error wrapping ctx.Err().
func ShardEnginesContext(ctx context.Context, e *Engine, count, radius int) ([]*Engine, error) {
	return ShardEnginesWithStrategy(ctx, e, count, radius, ShardLocality)
}

// ShardEnginesWithStrategy is ShardEnginesContext with an explicit ownership
// strategy. ShardContiguous reproduces the pre-locality range split — the
// benchmark uses it to measure the halo-duplication before/after — at
// rankings identical to ShardLocality's; everything else should let
// ShardEnginesContext pick the default.
func ShardEnginesWithStrategy(ctx context.Context, e *Engine, count, radius int, strategy ShardStrategy) ([]*Engine, error) {
	if e.shard != nil {
		return nil, fmt.Errorf("%w: engine already serves shard %d of %d; partition the original engine instead", ErrShardSet, e.shard.Index, e.shard.Count)
	}
	if radius == 0 {
		radius = DefaultShardRadius
	}
	strat, err := strategy.internal()
	if err != nil {
		return nil, err
	}
	cfg := shard.Config{
		Count:      count,
		Radius:     radius,
		Strategy:   strat,
		Importance: e.imp,
		Damp:       e.model.DampVector(),
		Params:     e.model.Params(),
		Workers:    e.workers,
	}
	if e.starIdx != nil {
		cfg.IsStar = e.starIdx.Parts().IsStar
		cfg.StarDepth = e.starIdx.MaxDepth()
	}
	plan, shards, err := shard.Build(ctx, e.g, cfg)
	if err != nil {
		return nil, err
	}
	engines := make([]*Engine, count)
	for i, sh := range shards {
		p := &plan.Parts[i]
		// Restrict the tuple mapping to member nodes so Importance on a
		// shard engine answers exactly for what the shard holds.
		var entries []relational.MappingEntry
		byKey := make(map[string]graph.NodeID)
		for _, me := range e.mapEntries {
			if p.Member[me.Node] {
				entries = append(entries, me)
				byKey[me.Table+"\x00"+me.Key] = me.Node
			}
		}
		lo, hi := p.Span()
		se := &Engine{
			g:          sh.G,
			ix:         sh.Ix,
			model:      sh.Model,
			searcher:   sh.Searcher,
			starIdx:    sh.Star,
			imp:        e.imp,
			workers:    e.workers,
			mapEntries: entries,
			lookup: func(table, key string) (graph.NodeID, bool) {
				id, ok := byKey[table+"\x00"+key]
				return id, ok
			},
			shard: &shardMeta{
				Index: i, Count: count, Radius: radius,
				Owned: p.Owned, Lo: lo, Hi: hi,
				TotalNodes: e.g.NumNodes(), TotalEdges: e.g.NumEdges(),
			},
			ownedDist: sh.OwnedDist,
		}
		se.buildStats.Source = SourceBuild
		se.buildStats.Workers = e.workers
		se.scores = rwmp.NewScoreCache(sh.Model, 0)
		if sh.Star != nil {
			se.cachedIdx = pathindex.NewCached(sh.Star, 0)
		}
		engines[i] = se
	}
	return engines, nil
}

// ShardedEngine answers queries over a set of shard engines with
// scatter-gather: every shard evaluates the query locally in parallel, and
// the coordinator merges the locally-optimal lists into the global top-k.
// Because each shard replicates a halo wide enough to contain every answer
// tree centered in its owned range, and scores trees with the whole graph's
// importance and dampening vectors, the merged ranking is byte-identical to
// running the same query on the unpartitioned engine — at every shard count
// and worker count. It is safe for concurrent use, like Engine.
type ShardedEngine struct {
	shards []*Engine
	radius int
	nodes  int
	edges  int
}

// NewSharded composes shard engines — from ShardEngines or OpenShardSet —
// into a scatter-gather coordinator. The engines must form exactly one
// complete set: one engine per shard index, in index order, all cut from the
// same graph with the same radius. Violations are reported with an error
// wrapping ErrShardSet. NewSharded only validates; it is cheap enough to
// call per request on an ad-hoc slice (the serving layer does, composing
// independently reloadable per-shard engines).
func NewSharded(engines []*Engine) (*ShardedEngine, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("%w: no engines", ErrShardSet)
	}
	first := engines[0].shard
	if first == nil {
		return nil, fmt.Errorf("%w: engine 0 is not a shard engine", ErrShardSet)
	}
	if first.Count != len(engines) {
		return nil, fmt.Errorf("%w: got %d engines for a set of %d shards", ErrShardSet, len(engines), first.Count)
	}
	// Ownership must partition the ID space: every node owned by exactly
	// one shard. The owner bitmap catches overlaps pairwise and the final
	// count catches gaps, whatever strategy cut the plan.
	owner := make([]bool, first.TotalNodes)
	covered := 0
	for i, e := range engines {
		m := e.shard
		if m == nil {
			return nil, fmt.Errorf("%w: engine %d is not a shard engine", ErrShardSet, i)
		}
		if m.Index != i {
			return nil, fmt.Errorf("%w: engine %d carries shard index %d; pass the set in index order", ErrShardSet, i, m.Index)
		}
		if m.Count != first.Count || m.Radius != first.Radius ||
			m.TotalNodes != first.TotalNodes || m.TotalEdges != first.TotalEdges {
			return nil, fmt.Errorf("%w: engine %d (count %d, radius %d, %d nodes) does not match engine 0 (count %d, radius %d, %d nodes)",
				ErrShardSet, i, m.Count, m.Radius, m.TotalNodes, first.Count, first.Radius, first.TotalNodes)
		}
		if e.g.NumNodes() != m.TotalNodes {
			return nil, fmt.Errorf("%w: engine %d holds %d nodes, want the full ID space of %d", ErrShardSet, i, e.g.NumNodes(), m.TotalNodes)
		}
		prev := graph.NodeID(-1)
		for _, v := range m.Owned {
			if v <= prev {
				return nil, fmt.Errorf("%w: engine %d owned set not strictly ascending at node %d", ErrShardSet, i, v)
			}
			prev = v
			if int(v) >= first.TotalNodes {
				return nil, fmt.Errorf("%w: engine %d owns node %d outside the %d-node ID space", ErrShardSet, i, v, first.TotalNodes)
			}
			if owner[v] {
				return nil, fmt.Errorf("%w: node %d owned by engine %d and an earlier engine", ErrShardSet, v, i)
			}
			owner[v] = true
			covered++
		}
	}
	if covered != first.TotalNodes {
		return nil, fmt.Errorf("%w: owned sets cover %d of %d nodes", ErrShardSet, covered, first.TotalNodes)
	}
	return &ShardedEngine{
		shards: engines,
		radius: first.Radius,
		nodes:  first.TotalNodes,
		edges:  first.TotalEdges,
	}, nil
}

// NumShards reports the number of shards in the set.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// Radius reports the set's halo depth; queries are accepted for diameters
// up to 2·Radius.
func (s *ShardedEngine) Radius() int { return s.radius }

// Shard returns shard engine i, for per-shard diagnostics.
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// Engines returns the shard engines in shard order, as a copy — for callers
// that manage the engines' lifecycles individually (the serving layer runs
// one hot-swappable provider per shard).
func (s *ShardedEngine) Engines() []*Engine {
	out := make([]*Engine, len(s.shards))
	copy(out, s.shards)
	return out
}

// NumNodes reports the size of the whole partitioned data graph (not the
// sum of the shards' halo-inflated subgraphs).
func (s *ShardedEngine) NumNodes() int { return s.nodes }

// NumEdges reports the directed edge count of the whole partitioned graph.
func (s *ShardedEngine) NumEdges() int { return s.edges }

// TermSelectivity reports how many graph nodes' text contains term, summing
// each shard's count over its owned node set only. Halo replicas are indexed
// by several shards but owned by exactly one, so the sum equals the
// unpartitioned engine's TermSelectivity exactly — the serving layer's
// cost-based admission prices a query identically whether it runs sharded or
// not.
func (s *ShardedEngine) TermSelectivity(term string) int {
	total := 0
	for _, e := range s.shards {
		m := e.shard
		if len(m.Owned) == int(m.Hi-m.Lo) {
			// The owned set is exactly its span (contiguous plans, and any
			// locality chunk that happens to be an interval): two binary
			// searches beat the postings merge.
			total += e.ix.DFRange(term, m.Lo, m.Hi)
		} else {
			total += e.ix.DFIn(term, m.Owned)
		}
	}
	return total
}

// CacheStats sums the cache counters of every shard engine.
func (s *ShardedEngine) CacheStats() CacheStats {
	var cs CacheStats
	for _, e := range s.shards {
		c := e.CacheStats()
		cs.ScoreHits += c.ScoreHits
		cs.ScoreMisses += c.ScoreMisses
		cs.BoundHits += c.BoundHits
		cs.BoundMisses += c.BoundMisses
	}
	return cs
}

// Close closes every shard engine and returns the first error. The same
// in-flight-query caveat as Engine.Close applies to each shard.
func (s *ShardedEngine) Close() error {
	var first error
	for _, e := range s.shards {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Search tokenizes the query string and returns the global top-k answers;
// the sharded counterpart of Engine.Search.
func (s *ShardedEngine) Search(query string, k int) ([]Result, error) {
	res, err := s.SearchContext(context.Background(), query, k)
	return res.Results, err
}

// SearchContext tokenizes the query string and runs it under ctx with
// default options.
func (s *ShardedEngine) SearchContext(ctx context.Context, query string, k int) (SearchResult, error) {
	return s.SearchTermsContext(ctx, textindex.Tokenize(query), k, SearchOptions{})
}

// SearchTerms runs a query given pre-split terms and explicit options,
// uncancellable and without stats; SearchTermsContext is the full-fidelity
// form.
func (s *ShardedEngine) SearchTerms(terms []string, k int, opts SearchOptions) ([]Result, error) {
	res, err := s.SearchTermsContext(context.Background(), terms, k, opts)
	return res.Results, err
}

// SearchTermsContext runs one query as scatter-gather: every shard evaluates
// it concurrently over its subgraph (each leg resolving options exactly as
// Engine.SearchTermsContext would, including the shard's own star index and
// caches), and the shard lists merge under the global score order with
// overlap duplicates removed. The ranking is byte-identical to the
// unpartitioned engine's for every shard and worker count. The resolved
// diameter must not exceed 2×Radius — beyond that an answer tree could
// straddle shards and exactness would be lost, so the request is rejected
// with ErrBadOptions. Stats are aggregated across shards: work counters sum,
// Truncated and Interrupted OR together, except that a truncated shard whose
// remaining frontier provably cannot displace the merged top-k (its
// FrontierBound is below the k-th merged score) does not mark the result
// truncated. Cancellation follows the Engine.SearchTermsContext contract.
func (s *ShardedEngine) SearchTermsContext(ctx context.Context, terms []string, k int, opts SearchOptions) (SearchResult, error) {
	start := time.Now()
	// Validate once up front so a bad request fails before any scatter; the
	// per-shard legs re-resolve with their own index and caches.
	sopts, err := s.shards[0].searchOptions(k, opts)
	if err != nil {
		return SearchResult{}, err
	}
	if sopts.Diameter > 2*s.radius {
		return SearchResult{}, fmt.Errorf("%w: Diameter %d exceeds the shard set's exactness horizon 2×radius = %d", ErrBadOptions, sopts.Diameter, 2*s.radius)
	}
	lists := make([][]search.Answer, len(s.shards))
	stats := make([]search.Stats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, e := range s.shards {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			so, err := e.searchOptions(k, opts)
			if err != nil {
				errs[i] = err
				return
			}
			lists[i], stats[i], errs[i] = e.searcher.TopKContext(ctx, terms, so)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return SearchResult{}, err
		}
	}
	refs, agg := shard.Gather(k, lists, stats)
	res := SearchResult{
		Results: make([]Result, len(refs)),
		Stats: SearchStats{
			Expanded:      agg.Expanded,
			Generated:     agg.Generated,
			Answers:       agg.Answers,
			Truncated:     agg.Truncated,
			Interrupted:   agg.Interrupted,
			FrontierBound: agg.FrontierBound,
			Elapsed:       time.Since(start),
		},
	}
	for j, r := range refs {
		e := s.shards[r.List]
		res.Results[j] = e.result(lists[r.List][r.Rank], terms)
	}
	return res, nil
}

// ShardSnapshotPath names the snapshot file of shard index within the set
// anchored at path: path plus a ".shard<index>" suffix. SaveShardSet and
// OpenShardSet agree on this layout.
func ShardSnapshotPath(path string, index int) string {
	return fmt.Sprintf("%s.shard%d", path, index)
}

// SaveShardSet writes one v2 snapshot per shard engine under the
// ShardSnapshotPath naming scheme. Each file is written to a temporary name
// in the same directory and renamed into place, so a reader never sees a
// partial snapshot.
func SaveShardSet(engines []*Engine, path string) error {
	if _, err := NewSharded(engines); err != nil {
		return err
	}
	for i, e := range engines {
		target := ShardSnapshotPath(path, i)
		tmp, err := os.CreateTemp(filepath.Dir(target), filepath.Base(target)+".tmp*")
		if err != nil {
			return err
		}
		err = e.Save(tmp)
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), target)
		}
		if err != nil {
			os.Remove(tmp.Name())
			return err
		}
	}
	return nil
}

// OpenShardSet memory-maps every snapshot of the shard set anchored at path
// (see ShardSnapshotPath) and composes the engines into a ShardedEngine.
// The set size comes from shard 0's snapshot; a missing, corrupt or
// mismatched member fails the whole open with every already-opened shard
// closed. Close the returned engine when done, never mid-query (the shards
// alias their mappings; see Open).
func OpenShardSet(path string) (*ShardedEngine, error) {
	first, err := Open(ShardSnapshotPath(path, 0))
	if err != nil {
		return nil, err
	}
	if first.shard == nil {
		first.Close()
		return nil, fmt.Errorf("%w: %s is not a shard snapshot", ErrShardSet, ShardSnapshotPath(path, 0))
	}
	engines := []*Engine{first}
	for i := 1; i < first.shard.Count; i++ {
		e, err := Open(ShardSnapshotPath(path, i))
		if err == nil && e.shard == nil {
			e.Close()
			err = fmt.Errorf("%w: %s is not a shard snapshot", ErrShardSet, ShardSnapshotPath(path, i))
		}
		if err != nil {
			for _, prev := range engines {
				prev.Close()
			}
			return nil, err
		}
		engines = append(engines, e)
	}
	s, err := NewSharded(engines)
	if err != nil {
		for _, e := range engines {
			e.Close()
		}
		return nil, err
	}
	return s, nil
}
