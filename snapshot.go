package cirank

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cirank/internal/graph"
	"cirank/internal/pathindex"
	"cirank/internal/rwmp"
	"cirank/internal/search"
	"cirank/internal/textindex"
)

// Engine snapshots persist the expensive build products — the data graph,
// the converged importance vector and the star index — so a process restart
// skips regenerating and re-solving them. The text index and RWMP model are
// cheap and rebuilt on load.
//
//	magic "CIEN" | version u32 | alpha f64 | group f64
//	graph (graph format) | importance ([]f64) | hasIndex u8 | star index
//
// One limitation: tuples merged into a single entity node are reloaded
// under the surviving node's table and key only; Importance lookups for the
// merged-away role keys resolve to nothing after a reload.

const (
	engineMagic   = "CIEN"
	engineVersion = 1
)

// Save writes a snapshot of the engine.
func (e *Engine) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(engineMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], engineVersion)
	binary.LittleEndian.PutUint64(hdr[4:], math.Float64bits(e.model.Params().Alpha))
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(e.model.Params().Group))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := e.g.WriteTo(bw); err != nil {
		return err
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(len(e.imp)))
	if _, err := bw.Write(count[:]); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range e.imp {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if e.starIdx == nil {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	} else {
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		if _, err := e.starIdx.WriteTo(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadEngine reconstructs an engine from a snapshot written by Save.
func LoadEngine(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("cirank: reading snapshot magic: %w", err)
	}
	if string(magic) != engineMagic {
		return nil, fmt.Errorf("cirank: bad snapshot magic %q", magic)
	}
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("cirank: reading snapshot header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != engineVersion {
		return nil, fmt.Errorf("cirank: unsupported snapshot version %d", v)
	}
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(hdr[4:]))
	group := math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:]))
	g, err := graph.Read(br)
	if err != nil {
		return nil, fmt.Errorf("cirank: reading snapshot graph: %w", err)
	}
	var count [8]byte
	if _, err := io.ReadFull(br, count[:]); err != nil {
		return nil, fmt.Errorf("cirank: reading importance count: %w", err)
	}
	n := binary.LittleEndian.Uint64(count[:])
	if int(n) != g.NumNodes() {
		return nil, fmt.Errorf("cirank: snapshot has %d importance values for %d nodes", n, g.NumNodes())
	}
	imp := make([]float64, n)
	buf := make([]byte, 8)
	for i := range imp {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("cirank: reading importance: %w", err)
		}
		imp[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	hasIdx, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("cirank: reading index flag: %w", err)
	}
	var starIdx *pathindex.StarIndex
	switch hasIdx {
	case 0:
		// no index in the snapshot
	case 1:
		starIdx, err = pathindex.ReadStar(br, g)
		if err != nil {
			return nil, fmt.Errorf("cirank: reading star index: %w", err)
		}
	default:
		// Any other value is corruption; treating it as "no index" would
		// silently drop the remainder of the stream.
		return nil, fmt.Errorf("cirank: invalid index flag %d in snapshot", hasIdx)
	}
	ix := textindex.Build(g)
	model, err := rwmp.New(g, ix, imp, rwmp.Params{Alpha: alpha, Group: group})
	if err != nil {
		return nil, err
	}
	// Rebuild the tuple lookup from the graph's node records.
	byKey := make(map[string]graph.NodeID, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		node := g.Node(graph.NodeID(v))
		byKey[node.Relation+"\x00"+node.Key] = graph.NodeID(v)
	}
	e := &Engine{
		g:        g,
		ix:       ix,
		model:    model,
		searcher: search.New(model),
		starIdx:  starIdx,
		imp:      imp,
		lookup: func(table, key string) (graph.NodeID, bool) {
			id, ok := byKey[table+"\x00"+key]
			return id, ok
		},
	}
	// Snapshots predate the parallel/caching knobs and carry no Config, so
	// loaded engines get the auto defaults (Workers 0, default cache sizes).
	e.scores = rwmp.NewScoreCache(model, 0)
	if starIdx != nil {
		e.cachedIdx = pathindex.NewCached(starIdx, 0)
	}
	return e, nil
}
