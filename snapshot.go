package cirank

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"cirank/internal/graph"
	"cirank/internal/mmapio"
	"cirank/internal/pathindex"
	"cirank/internal/relational"
	"cirank/internal/rwmp"
	"cirank/internal/search"
	"cirank/internal/shard"
	"cirank/internal/textindex"
)

// Engine snapshots persist every build product — the data graph, the
// converged importance vector, the dampening rates, the star index, the full
// text index and the complete tuple mapping — so a process restart skips all
// of the expensive offline stages. Save writes format v2, a sectioned layout
// built for zero-copy loading:
//
//	magic "CIEN" | version u32 (=2) | sectionCount u32 | tableCRC32 u32
//	section table: sectionCount × 40-byte entries
//	    name [16]byte (NUL-padded) | offset u64 | length u64 |
//	    crc32 u32 | reserved u32 (zero)
//	payloads, each at a 16-byte-aligned offset, in table order
//
// Flat-array sections (CSR offsets/edges/out-sums, importance, dampening,
// star tables) are raw little-endian arrays, so Open can view them directly
// from a memory-mapped file without decoding; variable-length sections
// (node records, text index, entity map) are decoded on every load. The
// section table's CRC and the per-section CRCs are verified before any
// payload is trusted. Section names, in file order:
//
//	meta        alpha f64 | group f64 | numNodes u64 | numEdges u64 | flags u64
//	nodes       numNodes × (relation str | key str | text str | words u32)
//	csr.off     (numNodes+1) × i32
//	csr.edge    numEdges × (to u32 | pad u32 | weight f64)
//	csr.outsum  numNodes × f64
//	imp         numNodes × f64
//	damp        numNodes × f64
//	text        textindex serialization (see textindex.Index.WriteTo)
//	entmap      count u64 | count × (table str | key str | node u32)
//	star.meta   maxDepth u32 | reserved u32 | numStar u64 | far f64
//	star.flags  numNodes × u8 (0/1)
//	star.ord    numNodes × i32
//	star.dist   numStar² × u8
//	star.ret    numStar² × f64
//	shard       index u64 | count u64 | radius u64 |
//	            ownedLo u64 | ownedHi u64 | totalNodes u64 | totalEdges u64
//	shard.owned ownedCount × u32 (node IDs, strictly ascending)
//
// The five star.* sections are present together exactly when the meta flags
// word has bit 0 set; the shard sections (a shard engine's slice of its
// partition plan, see ShardEngines) exactly when bit 1 is set; strings are
// u32-length-prefixed UTF-8. shard.owned is the explicit owned node set of
// a locality-partitioned shard; ownedLo/ownedHi in the shard section are
// its span. Snapshots written before ownership travelled explicitly carry
// only the shard section, and the owned set decodes as the whole interval
// [ownedLo, ownedHi). The encoding is deterministic: the same engine always
// serializes to the same bytes.
//
// LoadEngine also still reads the legacy v1 stream format (which rebuilt the
// text index and tuple lookup on load, losing merged-away role keys); the
// version word after the magic selects the decoder. Every decode error wraps
// ErrBadSnapshot.

const (
	engineMagic     = "CIEN"
	engineVersionV1 = 1
	engineVersionV2 = 2

	// snapHeaderSize is the fixed v2 preamble: magic, version, section
	// count, table CRC.
	snapHeaderSize = 16
	// snapEntrySize is one section-table entry.
	snapEntrySize = 40
	// snapNameLen is the fixed width of a section name (NUL-padded).
	snapNameLen = 16
	// snapAlign is the payload alignment, wide enough for every aliased
	// element type (f64 and the 16-byte edge record).
	snapAlign = 16
	// maxSections bounds the section count a decoder will size a table for;
	// the format defines 16 names, so anything near this is corruption.
	maxSections = 64
	// maxSnapshotString bounds one length-prefixed string, matching the
	// graph serialization's limit.
	maxSnapshotString = 1 << 24

	metaSectionSize     = 40
	starMetaSectionSize = 24
	shardSectionSize    = 56
	// metaFlagStarIndex marks that the five star.* sections are present.
	metaFlagStarIndex = uint64(1) << 0
	// metaFlagShard marks that the shard section is present: the engine
	// serves one shard of a partitioned set (see ShardEngines).
	metaFlagShard = uint64(1) << 1
)

// Section names of the v2 format.
const (
	secMeta      = "meta"
	secNodes     = "nodes"
	secCSROff    = "csr.off"
	secCSREdge   = "csr.edge"
	secCSRSum    = "csr.outsum"
	secImp       = "imp"
	secDamp      = "damp"
	secText      = "text"
	secEntMap    = "entmap"
	secStarMeta  = "star.meta"
	secStarFlags = "star.flags"
	secStarOrd   = "star.ord"
	secStarDist  = "star.dist"
	secStarRet   = "star.ret"
	secShard     = "shard"
	secShardOwn  = "shard.owned"
)

// requiredSections must be present in every v2 snapshot; starSections are
// all-or-none, keyed on the meta flags word.
var (
	requiredSections = []string{
		secMeta, secNodes, secCSROff, secCSREdge, secCSRSum,
		secImp, secDamp, secText, secEntMap,
	}
	starSections  = []string{secStarMeta, secStarFlags, secStarOrd, secStarDist, secStarRet}
	knownSections = func() map[string]bool {
		m := make(map[string]bool)
		for _, s := range requiredSections {
			m[s] = true
		}
		for _, s := range starSections {
			m[s] = true
		}
		m[secShard] = true
		m[secShardOwn] = true
		return m
	}()
)

// badSnap builds an error wrapping ErrBadSnapshot.
func badSnap(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
}

// snapSection is one named payload queued for writing.
type snapSection struct {
	name    string
	payload []byte
}

// Save writes a v2 snapshot of the engine. The byte stream is deterministic:
// saving the same engine (or an engine loaded from the saved bytes) always
// produces identical output.
func (e *Engine) Save(w io.Writer) error {
	secs, err := e.encodeSections()
	if err != nil {
		return err
	}
	return writeSnapshot(w, secs)
}

// encodeSections serializes every engine part into its named section, in
// file order.
func (e *Engine) encodeSections() ([]snapSection, error) {
	n := e.g.NumNodes()
	offsets, edges, outSum := e.g.CSR()
	params := e.model.Params()

	meta := make([]byte, 0, metaSectionSize)
	meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(params.Alpha))
	meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(params.Group))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(n))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(len(edges)))
	var flags uint64
	if e.starIdx != nil {
		flags |= metaFlagStarIndex
	}
	if e.shard != nil {
		flags |= metaFlagShard
	}
	meta = binary.LittleEndian.AppendUint64(meta, flags)

	var nodes []byte
	for v := 0; v < n; v++ {
		node := e.g.Node(graph.NodeID(v))
		nodes = appendSnapString(nodes, node.Relation)
		nodes = appendSnapString(nodes, node.Key)
		nodes = appendSnapString(nodes, node.Text)
		nodes = binary.LittleEndian.AppendUint32(nodes, uint32(node.Words))
	}

	var text bytes.Buffer
	if _, err := e.ix.WriteTo(&text); err != nil {
		return nil, err
	}

	entmap := binary.LittleEndian.AppendUint64(nil, uint64(len(e.mapEntries)))
	for _, me := range e.mapEntries {
		entmap = appendSnapString(entmap, me.Table)
		entmap = appendSnapString(entmap, me.Key)
		entmap = binary.LittleEndian.AppendUint32(entmap, uint32(me.Node))
	}

	secs := []snapSection{
		{secMeta, meta},
		{secNodes, nodes},
		{secCSROff, mmapio.AppendInt32s(nil, offsets)},
		{secCSREdge, graph.AppendEdges(nil, edges)},
		{secCSRSum, mmapio.AppendFloat64s(nil, outSum)},
		{secImp, mmapio.AppendFloat64s(nil, e.imp)},
		{secDamp, mmapio.AppendFloat64s(nil, e.model.DampVector())},
		{secText, text.Bytes()},
		{secEntMap, entmap},
	}
	if e.starIdx != nil {
		p := e.starIdx.Parts()
		sm := make([]byte, 0, starMetaSectionSize)
		sm = binary.LittleEndian.AppendUint32(sm, uint32(p.MaxDepth))
		sm = binary.LittleEndian.AppendUint32(sm, 0)
		sm = binary.LittleEndian.AppendUint64(sm, uint64(p.NumStar))
		sm = binary.LittleEndian.AppendUint64(sm, math.Float64bits(p.Far))
		starFlags := make([]byte, len(p.IsStar))
		for i, b := range p.IsStar {
			if b {
				starFlags[i] = 1
			}
		}
		secs = append(secs,
			snapSection{secStarMeta, sm},
			snapSection{secStarFlags, starFlags},
			snapSection{secStarOrd, mmapio.AppendInt32s(nil, p.StarIdx)},
			snapSection{secStarDist, p.Dist},
			snapSection{secStarRet, mmapio.AppendFloat64s(nil, p.Ret)},
		)
	}
	if e.shard != nil {
		m := e.shard
		sh := make([]byte, 0, shardSectionSize)
		sh = binary.LittleEndian.AppendUint64(sh, uint64(m.Index))
		sh = binary.LittleEndian.AppendUint64(sh, uint64(m.Count))
		sh = binary.LittleEndian.AppendUint64(sh, uint64(m.Radius))
		sh = binary.LittleEndian.AppendUint64(sh, uint64(m.Lo))
		sh = binary.LittleEndian.AppendUint64(sh, uint64(m.Hi))
		sh = binary.LittleEndian.AppendUint64(sh, uint64(m.TotalNodes))
		sh = binary.LittleEndian.AppendUint64(sh, uint64(m.TotalEdges))
		owned := make([]byte, 0, 4*len(m.Owned))
		for _, v := range m.Owned {
			owned = binary.LittleEndian.AppendUint32(owned, uint32(v))
		}
		secs = append(secs, snapSection{secShard, sh}, snapSection{secShardOwn, owned})
	}
	return secs, nil
}

// writeSnapshot lays the sections out with 16-byte-aligned offsets, computes
// the per-section and table CRCs, and writes header, table and payloads.
func writeSnapshot(w io.Writer, secs []snapSection) error {
	headerEnd := snapHeaderSize + snapEntrySize*len(secs)
	table := make([]byte, 0, snapEntrySize*len(secs))
	offsets := make([]int, len(secs))
	cur := snapAlignUp(headerEnd)
	for i, s := range secs {
		offsets[i] = cur
		var name [snapNameLen]byte
		copy(name[:], s.name)
		table = append(table, name[:]...)
		table = binary.LittleEndian.AppendUint64(table, uint64(cur))
		table = binary.LittleEndian.AppendUint64(table, uint64(len(s.payload)))
		table = binary.LittleEndian.AppendUint32(table, crc32.ChecksumIEEE(s.payload))
		table = binary.LittleEndian.AppendUint32(table, 0)
		cur = snapAlignUp(cur + len(s.payload))
	}
	hdr := make([]byte, 0, snapHeaderSize)
	hdr = append(hdr, engineMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, engineVersionV2)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(secs)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(table))
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.Write(table); err != nil {
		return err
	}
	pos := headerEnd
	var pad [snapAlign]byte
	for i, s := range secs {
		if _, err := bw.Write(pad[:offsets[i]-pos]); err != nil {
			return err
		}
		if _, err := bw.Write(s.payload); err != nil {
			return err
		}
		pos = offsets[i] + len(s.payload)
	}
	return bw.Flush()
}

// snapAlignUp rounds x up to the next multiple of snapAlign.
func snapAlignUp(x int) int {
	return (x + snapAlign - 1) &^ (snapAlign - 1)
}

// appendSnapString appends the u32-length-prefixed wire form of s.
func appendSnapString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// LoadEngine reconstructs an engine from a snapshot written by Save. Both
// the current v2 sectioned format and the legacy v1 stream format are
// accepted — the version word after the magic selects the decoder — so
// snapshots written before the format change keep loading. The returned
// engine copies everything off the stream (BuildStats.Source reports
// SourceStream); use Open for the zero-copy path. Corrupt input is rejected
// with an error wrapping ErrBadSnapshot.
func LoadEngine(r io.Reader) (*Engine, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, badSnap("reading snapshot header: %v", err)
	}
	if string(hdr[:4]) != engineMagic {
		return nil, badSnap("bad snapshot magic %q", hdr[:4])
	}
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case engineVersionV1:
		return loadV1(r)
	case engineVersionV2:
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("cirank: reading snapshot: %w", err)
		}
		data := make([]byte, 0, len(hdr)+len(rest))
		data = append(data, hdr[:]...)
		data = append(data, rest...)
		return decodeV2(data, false)
	default:
		return nil, badSnap("unsupported snapshot version %d", v)
	}
}

// loadV1 decodes the legacy stream format (the 8-byte magic+version preamble
// is already consumed). v1 snapshots carried neither the text index nor the
// entity map: the index is rebuilt from the node records and the tuple
// lookup is derived from them, which loses merged-away role keys — the
// documented v1 limitation the v2 format exists to fix.
func loadV1(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, badSnap("reading v1 header: %v", err)
	}
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(hdr[0:]))
	group := math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:]))
	g, err := graph.Read(br)
	if err != nil {
		return nil, badSnap("reading snapshot graph: %v", err)
	}
	var count [8]byte
	if _, err := io.ReadFull(br, count[:]); err != nil {
		return nil, badSnap("reading importance count: %v", err)
	}
	n := binary.LittleEndian.Uint64(count[:])
	if int(n) != g.NumNodes() {
		return nil, badSnap("snapshot has %d importance values for %d nodes", n, g.NumNodes())
	}
	imp := make([]float64, n)
	buf := make([]byte, 8)
	for i := range imp {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, badSnap("reading importance: %v", err)
		}
		imp[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	hasIdx, err := br.ReadByte()
	if err != nil {
		return nil, badSnap("reading index flag: %v", err)
	}
	var starIdx *pathindex.StarIndex
	switch hasIdx {
	case 0:
		// no index in the snapshot
	case 1:
		starIdx, err = pathindex.ReadStar(br, g)
		if err != nil {
			return nil, badSnap("reading star index: %v", err)
		}
	default:
		// Any other value is corruption; treating it as "no index" would
		// silently drop the remainder of the stream.
		return nil, badSnap("invalid index flag %d in snapshot", hasIdx)
	}
	ix := textindex.Build(g)
	model, err := rwmp.New(g, ix, imp, rwmp.Params{Alpha: alpha, Group: group})
	if err != nil {
		return nil, badSnap("%v", err)
	}
	// Derive the tuple mapping from the node records — all v1 carries.
	// Duplicate (relation, key) pairs keep the last node, matching map
	// semantics, so a later re-save stays canonical.
	byKey := make(map[string]graph.NodeID, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		node := g.Node(graph.NodeID(v))
		byKey[node.Relation+"\x00"+node.Key] = graph.NodeID(v)
	}
	entries := make([]relational.MappingEntry, 0, len(byKey))
	for v := 0; v < g.NumNodes(); v++ {
		node := g.Node(graph.NodeID(v))
		if byKey[node.Relation+"\x00"+node.Key] == graph.NodeID(v) {
			entries = append(entries, relational.MappingEntry{Table: node.Relation, Key: node.Key, Node: graph.NodeID(v)})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Table != entries[j].Table {
			return entries[i].Table < entries[j].Table
		}
		return entries[i].Key < entries[j].Key
	})
	return assembleLoaded(g, ix, model, imp, starIdx, entries, byKey), nil
}

// assembleLoaded builds the engine shell every load path shares. Snapshots
// predate the parallel/caching knobs and carry no Config, so loaded engines
// get the auto defaults (Workers 0, default cache sizes).
func assembleLoaded(g *graph.Graph, ix *textindex.Index, model *rwmp.Model, imp []float64,
	starIdx *pathindex.StarIndex, entries []relational.MappingEntry, byKey map[string]graph.NodeID) *Engine {
	e := &Engine{
		g:          g,
		ix:         ix,
		model:      model,
		searcher:   search.New(model),
		starIdx:    starIdx,
		imp:        imp,
		mapEntries: entries,
		lookup: func(table, key string) (graph.NodeID, bool) {
			id, ok := byKey[table+"\x00"+key]
			return id, ok
		},
	}
	e.buildStats.Source = SourceStream
	e.scores = rwmp.NewScoreCache(model, 0)
	if starIdx != nil {
		e.cachedIdx = pathindex.NewCached(starIdx, 0)
	}
	return e
}

// decodeV2 decodes a complete v2 snapshot image. With alias true the flat
// arrays view data's memory zero-copy where the platform permits (the Open
// path, where data is a read-only mapping); with alias false everything is
// copied (the LoadEngine stream path). Validation order: header, section
// table CRC, per-entry geometry (known name, alignment, in-bounds,
// non-overlapping), per-section CRCs, then structural checks of every
// decoded part.
func decodeV2(data []byte, alias bool) (*Engine, error) {
	if len(data) < snapHeaderSize {
		return nil, badSnap("truncated header: %d bytes", len(data))
	}
	if string(data[:4]) != engineMagic {
		return nil, badSnap("bad snapshot magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != engineVersionV2 {
		return nil, badSnap("unsupported snapshot version %d", v)
	}
	count := int(binary.LittleEndian.Uint32(data[8:]))
	if count < 1 || count > maxSections {
		return nil, badSnap("section count %d outside [1, %d]", count, maxSections)
	}
	tableEnd := snapHeaderSize + count*snapEntrySize
	if len(data) < tableEnd {
		return nil, badSnap("truncated section table: %d bytes for %d sections", len(data), count)
	}
	table := data[snapHeaderSize:tableEnd]
	if got, want := crc32.ChecksumIEEE(table), binary.LittleEndian.Uint32(data[12:]); got != want {
		return nil, badSnap("section table checksum mismatch (%08x != %08x)", got, want)
	}
	secs := make(map[string][]byte, count)
	prevEnd := uint64(tableEnd)
	for i := 0; i < count; i++ {
		entry := table[i*snapEntrySize : (i+1)*snapEntrySize]
		name := string(bytes.TrimRight(entry[:snapNameLen], "\x00"))
		if name == "" || bytes.IndexByte([]byte(name), 0) >= 0 {
			return nil, badSnap("invalid section name %q", entry[:snapNameLen])
		}
		if !knownSections[name] {
			return nil, badSnap("unknown section %q", name)
		}
		if _, dup := secs[name]; dup {
			return nil, badSnap("duplicate section %q", name)
		}
		off := binary.LittleEndian.Uint64(entry[16:])
		length := binary.LittleEndian.Uint64(entry[24:])
		crc := binary.LittleEndian.Uint32(entry[32:])
		if rsv := binary.LittleEndian.Uint32(entry[36:]); rsv != 0 {
			return nil, badSnap("section %q has nonzero reserved word %#x", name, rsv)
		}
		if off%snapAlign != 0 {
			return nil, badSnap("section %q misaligned at offset %d", name, off)
		}
		if off < prevEnd {
			return nil, badSnap("section %q at offset %d overlaps the previous section ending at %d", name, off, prevEnd)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, badSnap("section %q [%d, +%d) exceeds snapshot size %d", name, off, length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, badSnap("section %q checksum mismatch (%08x != %08x)", name, got, crc)
		}
		secs[name] = payload
		prevEnd = off + length
	}
	for _, name := range requiredSections {
		if _, ok := secs[name]; !ok {
			return nil, badSnap("missing section %q", name)
		}
	}

	meta := secs[secMeta]
	if len(meta) != metaSectionSize {
		return nil, badSnap("section %q is %d bytes, want %d", secMeta, len(meta), metaSectionSize)
	}
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(meta[0:]))
	group := math.Float64frombits(binary.LittleEndian.Uint64(meta[8:]))
	nNodes := binary.LittleEndian.Uint64(meta[16:])
	nEdges := binary.LittleEndian.Uint64(meta[24:])
	flags := binary.LittleEndian.Uint64(meta[32:])
	if flags&^(metaFlagStarIndex|metaFlagShard) != 0 {
		return nil, badSnap("unknown meta flags %#x", flags)
	}
	if nNodes > math.MaxInt32 {
		return nil, badSnap("node count %d exceeds the limit", nNodes)
	}
	if nEdges > math.MaxInt32 {
		return nil, badSnap("edge count %d exceeds the limit", nEdges)
	}
	n := int(nNodes)
	for _, want := range []struct {
		name string
		size uint64
	}{
		{secCSROff, 4 * (nNodes + 1)},
		{secCSREdge, 16 * nEdges},
		{secCSRSum, 8 * nNodes},
		{secImp, 8 * nNodes},
		{secDamp, 8 * nNodes},
	} {
		if got := uint64(len(secs[want.name])); got != want.size {
			return nil, badSnap("section %q is %d bytes, want %d", want.name, got, want.size)
		}
	}

	nodes, err := decodeNodeRecords(secs[secNodes], n)
	if err != nil {
		return nil, err
	}
	offsets := mmapio.Int32s(secs[secCSROff], alias)
	edges := graph.EdgesFromBytes(secs[secCSREdge], alias)
	outSum := mmapio.Float64s(secs[secCSRSum], alias)
	impV := mmapio.Float64s(secs[secImp], alias)
	dampV := mmapio.Float64s(secs[secDamp], alias)
	g, err := graph.FromCSR(nodes, offsets, edges, outSum)
	if err != nil {
		return nil, badSnap("%v", err)
	}
	ix, err := textindex.Read(bytes.NewReader(secs[secText]), n)
	if err != nil {
		return nil, badSnap("%v", err)
	}
	model, err := rwmp.NewFromParts(g, ix, impV, dampV, rwmp.Params{Alpha: alpha, Group: group})
	if err != nil {
		return nil, badSnap("%v", err)
	}

	var starIdx *pathindex.StarIndex
	if flags&metaFlagStarIndex != 0 {
		starIdx, err = decodeStarSections(secs, g, dampV, n, alias)
		if err != nil {
			return nil, err
		}
	} else {
		for _, name := range starSections {
			if _, ok := secs[name]; ok {
				return nil, badSnap("section %q present without the star-index flag", name)
			}
		}
	}

	var shardM *shardMeta
	if flags&metaFlagShard != 0 {
		shardM, err = decodeShardSection(secs, n, int(nEdges))
		if err != nil {
			return nil, err
		}
	} else {
		for _, name := range []string{secShard, secShardOwn} {
			if _, ok := secs[name]; ok {
				return nil, badSnap("section %q present without the shard flag", name)
			}
		}
	}

	entries, byKey, err := decodeEntMap(secs[secEntMap], n)
	if err != nil {
		return nil, err
	}
	e := assembleLoaded(g, ix, model, impV, starIdx, entries, byKey)
	e.shard = shardM
	if shardM != nil {
		// ownedDist is derived data: one undirected BFS over the shard
		// subgraph reproduces the build-time table exactly, so it is never
		// persisted — cheaper than widening the format and impossible to
		// let drift out of sync with the owned set.
		e.ownedDist = shard.OwnedDistances(g, shardM.Owned, shardM.Radius)
	}
	return e, nil
}

// decodeShardSection validates and decodes the shard section — the engine's
// slice of its partition plan — together with the optional shard.owned
// section holding the explicit owned node set. n and nEdges are the snapshot
// graph's sizes: a shard subgraph spans the full global ID space, so
// totalNodes must equal n, while totalEdges (the whole graph's) can only
// exceed the shard's. Without shard.owned (snapshots from before locality
// plans) ownership is the whole interval [lo, hi); with it, lo/hi must be
// exactly the owned set's span so a re-save is byte-stable.
func decodeShardSection(secs map[string][]byte, n, nEdges int) (*shardMeta, error) {
	b, ok := secs[secShard]
	if !ok {
		return nil, badSnap("shard flag set but section %q is missing", secShard)
	}
	if len(b) != shardSectionSize {
		return nil, badSnap("section %q is %d bytes, want %d", secShard, len(b), shardSectionSize)
	}
	var v [7]uint64
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	index, count, radius := v[0], v[1], v[2]
	lo, hi := v[3], v[4]
	totalNodes, totalEdges := v[5], v[6]
	if count < 1 || count > math.MaxInt32 {
		return nil, badSnap("shard count %d outside [1, %d]", count, math.MaxInt32)
	}
	if index >= count {
		return nil, badSnap("shard index %d outside [0, %d)", index, count)
	}
	if radius < 1 || radius > math.MaxInt32 {
		return nil, badSnap("shard radius %d outside [1, %d]", radius, math.MaxInt32)
	}
	if totalNodes != uint64(n) {
		return nil, badSnap("shard claims %d total nodes, snapshot holds %d", totalNodes, n)
	}
	if totalEdges < uint64(nEdges) || totalEdges > math.MaxInt32 {
		return nil, badSnap("shard claims %d total edges for a subgraph of %d", totalEdges, nEdges)
	}
	if lo > hi || hi > totalNodes {
		return nil, badSnap("shard owned range [%d, %d) invalid for %d nodes", lo, hi, totalNodes)
	}
	var owned []graph.NodeID
	if ob, ok := secs[secShardOwn]; ok {
		if len(ob)%4 != 0 {
			return nil, badSnap("section %q is %d bytes, want a multiple of 4", secShardOwn, len(ob))
		}
		owned = make([]graph.NodeID, len(ob)/4)
		prev := int64(-1)
		for i := range owned {
			id := int64(binary.LittleEndian.Uint32(ob[4*i:]))
			if id <= prev {
				return nil, badSnap("section %q not strictly ascending at entry %d", secShardOwn, i)
			}
			if uint64(id) >= totalNodes {
				return nil, badSnap("section %q owns node %d of %d", secShardOwn, id, totalNodes)
			}
			prev = id
			owned[i] = graph.NodeID(id)
		}
		switch {
		case len(owned) == 0:
			if lo != hi {
				return nil, badSnap("empty owned set with nonempty span [%d, %d)", lo, hi)
			}
		case uint64(owned[0]) != lo || uint64(owned[len(owned)-1])+1 != hi:
			return nil, badSnap("owned set spans [%d, %d), shard section claims [%d, %d)",
				owned[0], owned[len(owned)-1]+1, lo, hi)
		}
	} else {
		owned = make([]graph.NodeID, 0, hi-lo)
		for id := lo; id < hi; id++ {
			owned = append(owned, graph.NodeID(id))
		}
	}
	return &shardMeta{
		Index: int(index), Count: int(count), Radius: int(radius),
		Owned: owned, Lo: graph.NodeID(lo), Hi: graph.NodeID(hi),
		TotalNodes: int(totalNodes), TotalEdges: int(totalEdges),
	}, nil
}

// decodeStarSections validates and reassembles the five star.* sections.
func decodeStarSections(secs map[string][]byte, g *graph.Graph, damp []float64, n int, alias bool) (*pathindex.StarIndex, error) {
	for _, name := range starSections {
		if _, ok := secs[name]; !ok {
			return nil, badSnap("star-index flag set but section %q is missing", name)
		}
	}
	sm := secs[secStarMeta]
	if len(sm) != starMetaSectionSize {
		return nil, badSnap("section %q is %d bytes, want %d", secStarMeta, len(sm), starMetaSectionSize)
	}
	maxDepth := binary.LittleEndian.Uint32(sm[0:])
	if rsv := binary.LittleEndian.Uint32(sm[4:]); rsv != 0 {
		return nil, badSnap("section %q has nonzero reserved word %#x", secStarMeta, rsv)
	}
	numStar := binary.LittleEndian.Uint64(sm[8:])
	far := math.Float64frombits(binary.LittleEndian.Uint64(sm[16:]))
	if numStar > uint64(n) {
		return nil, badSnap("star count %d exceeds %d nodes", numStar, n)
	}
	s2 := numStar * numStar
	for _, want := range []struct {
		name string
		size uint64
	}{
		{secStarFlags, uint64(n)},
		{secStarOrd, 4 * uint64(n)},
		{secStarDist, s2},
		{secStarRet, 8 * s2},
	} {
		if got := uint64(len(secs[want.name])); got != want.size {
			return nil, badSnap("section %q is %d bytes, want %d", want.name, got, want.size)
		}
	}
	if !mmapio.ValidateBools(secs[secStarFlags]) {
		return nil, badSnap("section %q holds bytes other than 0/1", secStarFlags)
	}
	parts := pathindex.StarParts{
		MaxDepth: int(maxDepth),
		IsStar:   mmapio.Bools(secs[secStarFlags], alias),
		StarIdx:  mmapio.Int32s(secs[secStarOrd], alias),
		NumStar:  int(numStar),
		Dist:     mmapio.Uint8s(secs[secStarDist], alias),
		Ret:      mmapio.Float64s(secs[secStarRet], alias),
		Far:      far,
	}
	idx, err := pathindex.FromParts(g, damp, parts)
	if err != nil {
		return nil, badSnap("%v", err)
	}
	return idx, nil
}

// decodeEntMap decodes the entity-map section: the complete, strictly
// (table, key)-sorted tuple mapping. Strict ordering doubles as a duplicate
// check and pins the canonical encoding.
func decodeEntMap(b []byte, n int) ([]relational.MappingEntry, map[string]graph.NodeID, error) {
	c := &snapCursor{b: b}
	count, err := c.u64()
	if err != nil {
		return nil, nil, badSnap("reading entity map count: %v", err)
	}
	// Each entry needs at least two length prefixes and a node id.
	if count > uint64(len(b))/12 {
		return nil, nil, badSnap("entity map claims %d entries in %d bytes", count, len(b))
	}
	entries := make([]relational.MappingEntry, 0, count)
	byKey := make(map[string]graph.NodeID, count)
	prevTable, prevKey := "", ""
	for i := uint64(0); i < count; i++ {
		table, err := c.str()
		if err != nil {
			return nil, nil, badSnap("reading entity map entry %d: %v", i, err)
		}
		key, err := c.str()
		if err != nil {
			return nil, nil, badSnap("reading entity map entry %d: %v", i, err)
		}
		node, err := c.u32()
		if err != nil {
			return nil, nil, badSnap("reading entity map entry %d: %v", i, err)
		}
		if node >= uint32(n) {
			return nil, nil, badSnap("entity map entry %s/%s references node %d of %d", table, key, node, n)
		}
		if i > 0 && (table < prevTable || (table == prevTable && key <= prevKey)) {
			return nil, nil, badSnap("entity map not strictly sorted at %s/%s", table, key)
		}
		prevTable, prevKey = table, key
		entries = append(entries, relational.MappingEntry{Table: table, Key: key, Node: graph.NodeID(node)})
		byKey[table+"\x00"+key] = graph.NodeID(node)
	}
	if len(c.b) != 0 {
		return nil, nil, badSnap("%d trailing bytes after the entity map", len(c.b))
	}
	return entries, byKey, nil
}

// decodeNodeRecords decodes the nodes section into graph node records.
func decodeNodeRecords(b []byte, n int) ([]graph.Node, error) {
	// Each record needs at least three length prefixes and a word count,
	// so the section length bounds a credible node count before the
	// allocation below trusts it.
	if uint64(len(b)) < 16*uint64(n) {
		return nil, badSnap("section %q is %d bytes for %d node records", secNodes, len(b), n)
	}
	c := &snapCursor{b: b}
	nodes := make([]graph.Node, 0, n)
	for i := 0; i < n; i++ {
		rel, err := c.str()
		if err != nil {
			return nil, badSnap("reading node record %d: %v", i, err)
		}
		key, err := c.str()
		if err != nil {
			return nil, badSnap("reading node record %d: %v", i, err)
		}
		text, err := c.str()
		if err != nil {
			return nil, badSnap("reading node record %d: %v", i, err)
		}
		words, err := c.u32()
		if err != nil {
			return nil, badSnap("reading node record %d: %v", i, err)
		}
		nodes = append(nodes, graph.Node{Relation: rel, Key: key, Text: text, Words: int(words)})
	}
	if len(c.b) != 0 {
		return nil, badSnap("%d trailing bytes after the node records", len(c.b))
	}
	return nodes, nil
}

// snapCursor consumes little-endian scalars and length-prefixed strings from
// an in-memory section.
type snapCursor struct {
	b []byte
}

func (c *snapCursor) u32() (uint32, error) {
	if len(c.b) < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v, nil
}

func (c *snapCursor) u64() (uint64, error) {
	if len(c.b) < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v, nil
}

func (c *snapCursor) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if n > maxSnapshotString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	if uint64(len(c.b)) < uint64(n) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s, nil
}
