package cirank_test

// The offline-build benchmark grid: dataset size × worker count × pipeline
// stage, shared with cmd/cirank-bench through internal/buildbench so `go test
// -bench` and the tracked BENCH_build.json measure the same thing. This file
// lives in package cirank_test because buildbench imports the root package (a
// cirank-internal benchmark would be an import cycle).
//
// Two speedup axes matter, and they need different machines to show:
//
//   - workers: N-worker vs 1-worker wall clock on the same stage. Needs
//     GOMAXPROCS > 1; on a single-CPU box the grid still certifies that extra
//     workers cost nothing.
//   - allocation: the live pooled-buffer naive build vs the frozen
//     "naive-maps" baseline at workers=1. Visible on any machine.
//
// Run with `make bench-json` to regenerate BENCH_build.json.

import (
	"context"
	"fmt"
	"testing"

	"cirank"
	"cirank/internal/buildbench"
)

// benchScales are the benchmarked dataset sizes (multipliers on the default
// DBLP table counts). Quadratic-space stages are gated to scales ≤ 1.
var benchScales = []struct {
	name  string
	scale float64
}{
	{"small", 0.25},
	{"medium", 1.0},
	{"large", 2.5},
}

var benchWorkers = []int{1, 2, 4, 8}

const benchSeed = 42

func BenchmarkBuild(b *testing.B) {
	for _, sc := range benchScales {
		w, err := buildbench.Load("dblp", sc.scale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("stage=pipeline/data=dblp-%s", sc.name), func(b *testing.B) {
			for _, workers := range benchWorkers {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					benchPipeline(b, w, workers)
				})
			}
		})
		for _, st := range buildbench.Stages() {
			if st.Quadratic && sc.scale > 1 {
				continue
			}
			workerCounts := benchWorkers
			if !st.Parallel {
				workerCounts = []int{1}
			}
			b.Run(fmt.Sprintf("stage=%s/data=dblp-%s", st.Name, sc.name), func(b *testing.B) {
				for _, workers := range workerCounts {
					b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
						benchStage(b, w, st, workers)
					})
				}
			})
		}
	}
}

func benchStage(b *testing.B, w *buildbench.Workload, st buildbench.Stage, workers int) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if err := st.Run(ctx, w, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPipeline(b *testing.B, w *buildbench.Workload, workers int) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		// Builders are single-use; the replay is setup, not pipeline work.
		b.StopTimer()
		bld, err := w.NewBuilder()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		eng, err := w.BuildPipeline(ctx, bld, workers)
		if err != nil {
			b.Fatal(err)
		}
		benchEngine = eng
	}
}

// benchEngine keeps the built engine alive so the pipeline benchmark cannot
// be elided.
var benchEngine *cirank.Engine
