# Standard entry points; CI (.github/workflows/ci.yml) runs build+vet+lint+race.
GO ?= go

.PHONY: all build test race vet lint bench check serve

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the concurrency tests
# (concurrency_test.go, internal/search/parallel_test.go, the cache tests)
# are written to put load on every shared structure.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint enforces the documentation contract: every exported identifier in
# the search, rwmp, pathindex, cache and server packages must carry a doc
# comment.
lint:
	$(GO) run ./cmd/doccheck internal/search internal/rwmp internal/pathindex internal/cache internal/server

# serve runs the HTTP query service on a generated DBLP dataset.
# Try: curl 'localhost:8080/search?q=some+keywords&k=5&timeout=2s'
serve:
	$(GO) run ./cmd/cirank-server -dataset dblp -addr :8080

# bench runs the paper-figure benchmarks plus the parallel/caching grid.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

check: build vet lint race
