# Standard entry points; CI (.github/workflows/ci.yml) runs the same gates
# as separate jobs: lint -> test matrix, fuzz-smoke, coverage, bench-smoke.
GO ?= go

# FUZZTIME bounds each fuzz target's budget in `make fuzz` (and the CI
# fuzz-smoke job); FUZZMINIMIZE keeps the fuzzer fuzzing instead of spending
# its budget minimizing interesting inputs.
FUZZTIME ?= 30s
FUZZMINIMIZE ?= 5x

.PHONY: all build test race vet lint fuzz diff cover bench bench-json bench-search bench-serve bench-shard bench-smoke check serve loadgen loadgen-tenants

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the concurrency tests
# (concurrency_test.go, internal/search/parallel_test.go, the cache tests)
# are written to put load on every shared structure.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint enforces the documentation contract: every exported identifier in
# the listed packages must carry a doc comment.
lint:
	$(GO) run ./cmd/doccheck internal/search internal/rwmp internal/pathindex internal/cache internal/server internal/servebench internal/shard internal/textindex internal/graph internal/buildbench internal/searchbench internal/relational internal/jtt internal/pagerank internal/eval internal/baseline internal/datagen internal/difftest internal/mmapio

# diff runs the differential correctness harness: every committed seed
# generates a random workload and cross-checks branch-and-bound against
# exhaustive enumeration, index bounds against brute-force ground truth,
# and every engine variant against the sequential baseline.
diff:
	$(GO) test -count=1 -run 'TestDifferential|TestRegression' ./internal/difftest

# fuzz runs each native fuzz target for FUZZTIME. The committed corpora
# under */testdata/fuzz are always replayed by plain `make test`; this
# target searches for new inputs. `go test -fuzz` takes one target per
# invocation, hence the repetition.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINIMIZE) ./internal/textindex
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotLoad$$' -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINIMIZE) .
	$(GO) test -run '^$$' -fuzz '^FuzzQueryParse$$' -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINIMIZE) .
	$(GO) test -run '^$$' -fuzz '^FuzzServerSearchParams$$' -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINIMIZE) ./internal/server

# cover writes a full-repo coverage profile and prints the function table.
# CI compares the total against COVERAGE_BASELINE.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1

# serve runs the HTTP query service on a generated DBLP dataset.
# Try: curl 'localhost:8080/v1/search?q=some+keywords&k=5&timeout=2s'
serve:
	$(GO) run ./cmd/cirank-server -dataset dblp -addr :8080

# loadgen replays the skewed query stream against a live server in the
# four tracked arms (caches off / warmed / hot reloads mid-load / the
# stream spread over three named tenants with reloads hitting only t0)
# and prints the serve report without touching the tracked JSON. Use
# `make bench-serve` to refresh BENCH_serve.json.
loadgen:
	$(GO) run ./cmd/cirank-loadgen -out -

# loadgen-tenants runs just the mixed-tenant isolation arm: three named
# tenants over one snapshot, hot reloads targeting t0 only. stale/failed
# and stale_other/failed_other must all be zero — a nonzero count means a
# reload of one tenant leaked into another.
loadgen-tenants:
	$(GO) run ./cmd/cirank-loadgen -arms tenants -out -

# bench runs the paper-figure benchmarks plus the parallel/caching grid.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-json regenerates the tracked performance trajectories: the
# offline-build grid (BENCH_build.json: scale x workers x stage, including
# the frozen map-based baseline), the engine-startup comparison
# (BENCH_load.json: cold build vs stream snapshot load vs zero-copy mmap
# open) and the online-search grid (BENCH_search.json: per-query p50/p99
# latency and allocations over a skewed query stream, live engine vs the
# frozen pre-rewrite allocator). Commit the results when the pipeline,
# snapshot format or search hot path changes.
bench-json:
	$(GO) run ./cmd/cirank-bench -out BENCH_build.json
	$(GO) run ./cmd/cirank-bench -mode load -out BENCH_load.json
	$(GO) run ./cmd/cirank-bench -mode search -out BENCH_search.json
	$(GO) run ./cmd/cirank-bench -mode serve -out BENCH_serve.json
	$(GO) run ./cmd/cirank-bench -mode shard -out BENCH_shard.json

# bench-shard refreshes only the scatter-gather trajectory: the shards x
# workers x k grid through the sharded coordinator (stage shardN), with the
# single-shard coordinator as the speedup_vs_shard1 reference. Rankings are
# byte-identical at every shard count; the grid tracks the throughput side.
bench-shard:
	$(GO) run ./cmd/cirank-bench -mode shard -out BENCH_shard.json

# bench-serve refreshes only the serving-stack trajectory: the four
# tracked arms (result cache and coalescing off, full stack warmed, hot
# reloads landing mid-load, the mixed-tenant split) through a live HTTP
# server. The serve-reload row's stale and failed columns must be zero in
# any committed report, and so must the serve-tenants row's stale_other
# and failed_other (reload isolation across tenants).
bench-serve:
	$(GO) run ./cmd/cirank-bench -mode serve -out BENCH_serve.json

# bench-search is the ad-hoc view of the online hot path: the BenchmarkSearch
# grid (scale x workers x k over the skewed stream, plus the frozen
# naive-alloc baseline) with allocation counts, without touching the tracked
# JSON. Use `make bench-json` to refresh BENCH_search.json.
bench-search:
	$(GO) test -run '^$$' -bench '^BenchmarkSearch$$' -benchmem .

# bench-smoke is the CI gate for the benchmark surface: every BenchmarkBuild
# and BenchmarkSearch cell runs once (catching bit-rot in the grids
# themselves), the build-determinism suites run under the race detector, and
# reduced grids are diffed against the committed BENCH_*.json baselines. The
# wall-clock diffs are warn-only (leading '-'): shared CI runners are too
# noisy to gate merges on wall-clock, but the delta tables in the log show
# drift early. The shard diff is the exception: exit code 3 means the halo
# duplication factor grew past the committed baseline — deterministic in
# (graph, plan), not noise — and fails the target; other nonzero exits are
# wall-clock deltas and stay warn-only.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkBuild$$' -benchtime 1x .
	$(GO) test -run '^$$' -bench '^BenchmarkSearch$$' -benchtime 1x .
	$(GO) test -race -run 'TestBuild|TestScratch|TestEdgeOrder|TestWeightBinarySearch|TestSharded' ./internal/pathindex ./internal/textindex ./internal/graph .
	$(GO) run ./cmd/cirank-loadgen -duration 1s -clients 4 -out /dev/null
	$(GO) run ./cmd/cirank-loadgen -arms tenants -duration 1s -clients 4 -out /dev/null
	-$(GO) run ./cmd/cirank-bench -compare BENCH_build.json -scales 0.25 -workers 1,2 -out /dev/null
	-$(GO) run ./cmd/cirank-bench -mode load -compare BENCH_load.json -scales 0.25 -out /dev/null
	-$(GO) run ./cmd/cirank-bench -mode search -compare BENCH_search.json -scales 0.12 -benchtime 1x -out /dev/null
	-$(GO) run ./cmd/cirank-bench -mode serve -compare BENCH_serve.json -benchtime 1s -workers 4 -out /dev/null
	$(GO) run ./cmd/cirank-bench -mode shard -compare BENCH_shard.json -scales 0.25 -benchtime 1x -out /dev/null || { \
		rc=$$?; \
		if [ "$$rc" -eq 3 ]; then \
			echo "bench-smoke: halo duplication factor regressed past BENCH_shard.json" >&2; \
			exit 1; \
		fi; \
		echo "bench-smoke: shard bench compare exceeded wall-clock tolerance (warn-only)" >&2; \
	}

check: build vet lint race
