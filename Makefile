# Standard entry points; CI (.github/workflows/ci.yml) runs build+vet+lint+race.
GO ?= go

.PHONY: all build test race vet lint bench bench-json bench-smoke check serve

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the concurrency tests
# (concurrency_test.go, internal/search/parallel_test.go, the cache tests)
# are written to put load on every shared structure.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint enforces the documentation contract: every exported identifier in
# the listed packages must carry a doc comment.
lint:
	$(GO) run ./cmd/doccheck internal/search internal/rwmp internal/pathindex internal/cache internal/server internal/textindex internal/graph internal/buildbench

# serve runs the HTTP query service on a generated DBLP dataset.
# Try: curl 'localhost:8080/search?q=some+keywords&k=5&timeout=2s'
serve:
	$(GO) run ./cmd/cirank-server -dataset dblp -addr :8080

# bench runs the paper-figure benchmarks plus the parallel/caching grid.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-json regenerates BENCH_build.json, the tracked offline-build
# performance trajectory (scale x workers x stage, including the frozen
# map-based baseline). Commit the result when the pipeline changes.
bench-json:
	$(GO) run ./cmd/cirank-bench -out BENCH_build.json

# bench-smoke is the CI gate for the build pipeline: every BenchmarkBuild
# cell runs once (catching bit-rot in the grid itself), and the
# build-determinism suites run under the race detector.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkBuild$$' -benchtime 1x .
	$(GO) test -race -run 'TestBuild|TestScratch|TestEdgeOrder|TestWeightBinarySearch' ./internal/pathindex ./internal/textindex ./internal/graph .

check: build vet lint race
