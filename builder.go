package cirank

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"cirank/internal/graph"
	"cirank/internal/relational"
	"cirank/internal/textindex"
)

// Relationship declares a schema-level connection between two tables; every
// related tuple pair becomes two directed graph edges. FromType/ToType
// override the labels used for weight lookup (needed when a table relates
// to itself, like paper citations); empty means the table name.
type Relationship struct {
	Name     string
	From, To string
	FromType string
	ToType   string
}

// Builder accumulates a database and produces a query-ready Engine.
// Builders are single-use and not safe for concurrent use.
type Builder struct {
	db       *relational.Database
	schema   *relational.Schema
	weights  graph.WeightTable
	err      error
	feedback []feedbackEntry
	stop     map[string]bool
}

type feedbackEntry struct {
	table, key string
	weight     float64
}

// NewBuilder creates a builder for a custom schema. Edge weights default to
// 1.0 for every relationship direction; use SetWeight to tune them (the
// paper's Table II).
func NewBuilder(tables []string, relationships []Relationship) (*Builder, error) {
	schema := &relational.Schema{Tables: tables}
	for _, r := range relationships {
		schema.Relationships = append(schema.Relationships, relational.Relationship{
			Name: r.Name, From: r.From, To: r.To, FromType: r.FromType, ToType: r.ToType,
		})
	}
	db, err := relational.NewDatabase(schema)
	if err != nil {
		return nil, err
	}
	return &Builder{db: db, schema: schema, weights: graph.WeightTable{}}, nil
}

// NewIMDBBuilder creates a builder with the paper's IMDB schema (Fig. 1(b))
// and Table II edge weights.
func NewIMDBBuilder() *Builder {
	schema := relational.IMDBSchema()
	db, err := relational.NewDatabase(schema)
	if err != nil {
		panic(err) // the built-in schema is valid by construction
	}
	return &Builder{db: db, schema: schema, weights: graph.DefaultIMDBWeights()}
}

// NewDBLPBuilder creates a builder with the paper's DBLP schema (Fig. 1(a))
// and Table II edge weights.
func NewDBLPBuilder() *Builder {
	schema := relational.DBLPSchema()
	db, err := relational.NewDatabase(schema)
	if err != nil {
		panic(err)
	}
	return &Builder{db: db, schema: schema, weights: graph.DefaultDBLPWeights()}
}

// SetWeight assigns the edge weight for the from→to direction label pair.
func (b *Builder) SetWeight(fromLabel, toLabel string, weight float64) {
	b.weights[graph.RelPair{From: fromLabel, To: toLabel}] = weight
}

// SetStopWords configures words to drop from tuple text at insertion time
// (and, symmetrically, from queries at search time — stopwords match
// nothing, because they were never indexed). Must be called before the
// first Insert to apply uniformly. Filtering tokenizes the text, so stored
// text is lowercased.
func (b *Builder) SetStopWords(words ...string) {
	if b.stop == nil {
		b.stop = make(map[string]bool, len(words))
	}
	for _, w := range words {
		for _, tok := range textindex.Tokenize(w) {
			b.stop[tok] = true
		}
	}
}

// filterText strips configured stopwords from text.
func (b *Builder) filterText(text string) string {
	if len(b.stop) == 0 {
		return text
	}
	toks := textindex.Tokenize(text)
	kept := toks[:0]
	for _, t := range toks {
		if !b.stop[t] {
			kept = append(kept, t)
		}
	}
	return strings.Join(kept, " ")
}

// Insert adds a tuple with its searchable text.
func (b *Builder) Insert(table, key, text string) error {
	return b.db.Insert(table, relational.Tuple{Key: key, Text: b.filterText(text)})
}

// InsertEntity adds a tuple tagged with a real-world entity key: tuples
// sharing an entity key merge into one graph node (a person who both acts
// and directs, §VI-A).
func (b *Builder) InsertEntity(table, key, text, entityKey string) error {
	return b.db.Insert(table, relational.Tuple{Key: key, Text: b.filterText(text), EntityKey: entityKey})
}

// LoadTable bulk-inserts tuples from CSV: a header row with a "key" column,
// an optional "entity" column, and text columns concatenated in order. It
// returns the number of tuples loaded. Stopword filtering applies only to
// rows loaded after SetStopWords.
func (b *Builder) LoadTable(table string, r io.Reader) (int, error) {
	if len(b.stop) > 0 {
		// The CSV loader writes tuples directly; rewriting their text
		// afterwards would race entity merging. Keep the contract simple.
		return 0, fmt.Errorf("cirank: LoadTable after SetStopWords is unsupported; pre-filter the CSV or use Insert")
	}
	return relational.LoadTupleCSV(b.db, table, r)
}

// LoadRelationship bulk-records relationship instances from CSV rows of
// `fromKey,toKey` (an optional "from,to" header is skipped).
func (b *Builder) LoadRelationship(relationship string, r io.Reader) (int, error) {
	return relational.LoadRelationshipCSV(b.db, relationship, r)
}

// MustInsert is Insert that records the first error instead of returning
// it; Build reports it. Convenient for literal datasets.
func (b *Builder) MustInsert(table, key, text string) {
	if err := b.Insert(table, key, text); err != nil && b.err == nil {
		b.err = err
	}
}

// Relate records a relationship instance between two existing tuples.
func (b *Builder) Relate(relationship, fromKey, toKey string) error {
	return b.db.Relate(relationship, fromKey, toKey)
}

// MustRelate is Relate with deferred error reporting, like MustInsert.
func (b *Builder) MustRelate(relationship, fromKey, toKey string) {
	if err := b.Relate(relationship, fromKey, toKey); err != nil && b.err == nil {
		b.err = err
	}
}

// AddFeedback records that users engaged with the tuple (e.g. clicked it in
// a result); Build routes Config.FeedbackMix of the teleport mass toward
// recorded tuples, implementing the paper's user-preference biasing.
func (b *Builder) AddFeedback(table, key string, weight float64) {
	b.feedback = append(b.feedback, feedbackEntry{table: table, key: key, weight: weight})
}

// NumTuples reports how many tuples have been inserted.
func (b *Builder) NumTuples() int { return b.db.NumTuples() }

// Build freezes the data and constructs the Engine: data graph, text index,
// importance values, RWMP model and (optionally) the star index. It is
// BuildContext under a background context; use BuildContext to bound or
// cancel a long build.
func (b *Builder) Build(cfg Config) (*Engine, error) {
	return b.BuildContext(context.Background(), cfg)
}

// BuildContext is Build bounded by ctx. The pipeline runs as a small stage
// DAG: graph construction first, then the text index concurrently with the
// PageRank → path-index chain, each parallel stage fanning out across the
// resolved Config.Workers count. A ctx that expires mid-build stops the
// in-flight stages at their next cancellation point and returns an error
// wrapping the context's error; nothing of the partial build escapes.
// The produced engine is identical for every worker count (certified by the
// build-determinism suite) and reports per-stage timings via
// Engine.BuildStats.
func (b *Builder) BuildContext(ctx context.Context, cfg Config) (*Engine, error) {
	if b.err != nil {
		return nil, fmt.Errorf("cirank: deferred build error: %w", b.err)
	}
	if err := ctx.Err(); err != nil {
		return nil, buildCancelled(err)
	}
	start := time.Now()
	defaultWeight := 1.0
	g, mp, err := relational.BuildGraph(b.db, b.weights, defaultWeight)
	if err != nil {
		return nil, err
	}
	var stats BuildStats
	stats.Graph = StageStats{Duration: time.Since(start), Workers: 1, Items: g.NumNodes()}
	isStar := relational.StarNodeSet(g, relational.StarTables(b.schema))
	feedback := make(map[graph.NodeID]float64, len(b.feedback))
	for _, f := range b.feedback {
		id, ok := mp.NodeOf(f.table, f.key)
		if !ok {
			return nil, fmt.Errorf("cirank: feedback references unknown tuple %s/%s", f.table, f.key)
		}
		feedback[id] += f.weight
	}
	eng, err := buildEngine(ctx, g, mp, isStar, cfg, feedback, &stats)
	if err != nil {
		return nil, err
	}
	stats.Total = time.Since(start)
	eng.buildStats = stats
	return eng, nil
}
