package cirank

import (
	"strings"
	"testing"
)

// fig2Engine builds the paper's Fig. 2 scenario through the public API.
func fig2Engine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	b := NewDBLPBuilder()
	b.MustInsert("Author", "a1", "Yannis Papakonstantinou")
	b.MustInsert("Author", "a2", "Jeffrey Ullman")
	b.MustInsert("Paper", "p1", "Capability Based Mediation in TSIMMIS")
	b.MustInsert("Paper", "p2", "The TSIMMIS Project Integration of Heterogeneous Information Sources")
	b.MustInsert("Paper", "c1", "citing one")
	b.MustInsert("Paper", "c2", "citing two")
	b.MustInsert("Paper", "c3", "citing three")
	for _, p := range []string{"p1", "p2"} {
		b.MustRelate("written_by", p, "a1")
		b.MustRelate("written_by", p, "a2")
	}
	// p2 is much more cited.
	b.MustRelate("cites", "c1", "p2")
	b.MustRelate("cites", "c2", "p2")
	b.MustRelate("cites", "c3", "p2")
	b.MustRelate("cites", "c1", "p1")
	eng, err := b.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineSearchFig2(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	res, err := eng.Search("Papakonstantinou Ullman", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	// The top answer must connect through the highly-cited paper p2.
	foundP2 := false
	for _, row := range res[0].Rows {
		if row.Table == "Paper" && row.Key == "p2" {
			foundP2 = true
			if row.Matched {
				t.Error("connector paper marked as matched")
			}
		}
	}
	if !foundP2 {
		t.Errorf("top answer does not use the cited paper: %+v", res[0].Rows)
	}
	if res[0].Score <= res[1].Score {
		t.Error("results not in descending score order")
	}
	// Tree structure: 3 rows, 2 edges, authors matched.
	if len(res[0].Rows) != 3 || len(res[0].Edges) != 2 {
		t.Errorf("unexpected answer shape: %d rows, %d edges", len(res[0].Rows), len(res[0].Edges))
	}
	matched := 0
	for _, r := range res[0].Rows {
		if r.Matched {
			matched++
		}
	}
	if matched != 2 {
		t.Errorf("matched rows = %d, want 2 authors", matched)
	}
}

func TestEngineSearchValidation(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	if _, err := eng.Search("ullman", 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := eng.Search("", 3); err == nil {
		t.Error("empty query accepted")
	}
	res, err := eng.Search("ullman nosuchword", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("AND semantics violated through public API")
	}
}

func TestEngineIndexToggle(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	withIdx, err := eng.SearchTerms([]string{"papakonstantinou", "ullman"}, 2, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := eng.SearchTerms([]string{"papakonstantinou", "ullman"}, 2, SearchOptions{DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withIdx) != len(noIdx) {
		t.Fatalf("index changed result count: %d vs %d", len(withIdx), len(noIdx))
	}
	for i := range withIdx {
		if withIdx[i].Score != noIdx[i].Score {
			t.Errorf("index changed result %d score: %g vs %g", i, withIdx[i].Score, noIdx[i].Score)
		}
	}
}

func TestEngineImportance(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	p2, ok := eng.Importance("Paper", "p2")
	if !ok {
		t.Fatal("p2 importance missing")
	}
	p1, ok := eng.Importance("Paper", "p1")
	if !ok {
		t.Fatal("p1 importance missing")
	}
	if p2 <= p1 {
		t.Errorf("cited paper importance %g not above %g", p2, p1)
	}
	if _, ok := eng.Importance("Paper", "zzz"); ok {
		t.Error("missing tuple reported importance")
	}
	if eng.NumNodes() != 7 {
		t.Errorf("NumNodes = %d, want 7", eng.NumNodes())
	}
	if eng.NumEdges() == 0 {
		t.Error("no edges")
	}
}

func TestFeedbackBiasing(t *testing.T) {
	build := func(mix float64) *Engine {
		b := NewDBLPBuilder()
		b.MustInsert("Author", "a1", "grace smith")
		b.MustInsert("Author", "a2", "henry smith")
		b.MustInsert("Paper", "p1", "first topic")
		b.MustInsert("Paper", "p2", "second topic")
		b.MustRelate("written_by", "p1", "a1")
		b.MustRelate("written_by", "p2", "a2")
		b.AddFeedback("Author", "a2", 1)
		cfg := DefaultConfig()
		cfg.FeedbackMix = mix
		eng, err := b.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	plain := build(0)
	biased := build(0.5)
	pPlain, _ := plain.Importance("Author", "a2")
	pBiased, _ := biased.Importance("Author", "a2")
	if pBiased <= pPlain {
		t.Errorf("feedback did not raise importance: %g vs %g", pBiased, pPlain)
	}
	// The ambiguous query "smith" should now prefer the clicked author.
	res, err := biased.Search("smith", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Rows[0].Key != "a2" {
		t.Errorf("feedback did not promote a2: %+v", res)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewDBLPBuilder()
	b.MustInsert("Author", "a1", "x")
	b.MustInsert("Author", "a1", "dup") // deferred error
	if _, err := b.Build(DefaultConfig()); err == nil {
		t.Error("deferred error not reported")
	}
	b2 := NewDBLPBuilder()
	b2.AddFeedback("Author", "ghost", 1)
	if _, err := b2.Build(DefaultConfig()); err == nil {
		t.Error("feedback on unknown tuple accepted")
	}
	if _, err := NewBuilder([]string{"A", "A"}, nil); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestCustomSchema(t *testing.T) {
	b, err := NewBuilder(
		[]string{"City", "Road"},
		[]Relationship{{Name: "connects", From: "Road", To: "City"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	b.SetWeight("Road", "City", 1)
	b.SetWeight("City", "Road", 0.5)
	b.MustInsert("City", "c1", "springfield")
	b.MustInsert("City", "c2", "shelbyville")
	b.MustInsert("Road", "r1", "route sixty six")
	b.MustRelate("connects", "r1", "c1")
	b.MustRelate("connects", "r1", "c2")
	eng, err := b.Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search("springfield shelbyville", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 3 {
		t.Fatalf("unexpected results: %+v", res)
	}
}

func TestStopWords(t *testing.T) {
	b := NewDBLPBuilder()
	b.SetStopWords("the", "of", "in")
	b.MustInsert("Paper", "p1", "The Art of Computer Programming")
	eng, err := b.Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Stopwords match nothing (they were stripped at insert time).
	res, err := eng.Search("the", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("stopword query returned %d results", len(res))
	}
	// Content words still match.
	res, err = eng.Search("computer programming", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("content query returned %d results", len(res))
	}
	if res[0].Rows[0].Text != "art computer programming" {
		t.Errorf("stored text = %q", res[0].Rows[0].Text)
	}
}

func TestBuilderCSVLoading(t *testing.T) {
	b := NewDBLPBuilder()
	if _, err := b.LoadTable("Author", strings.NewReader("key,name\na1,carol winter\na2,dave summer\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.LoadTable("Paper", strings.NewReader("key,title\np1,seminal storage work\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.LoadRelationship("written_by", strings.NewReader("from,to\np1,a1\np1,a2\n")); err != nil {
		t.Fatal(err)
	}
	eng, err := b.Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search("winter summer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 3 {
		t.Fatalf("CSV-loaded search: %+v", res)
	}
	// LoadTable after SetStopWords is rejected.
	b2 := NewDBLPBuilder()
	b2.SetStopWords("x")
	if _, err := b2.LoadTable("Author", strings.NewReader("key,name\na,b\n")); err == nil {
		t.Error("LoadTable after SetStopWords accepted")
	}
}
