package cirank

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"cirank/internal/mmapio"
)

// Open memory-maps the snapshot file at path and reconstructs an engine from
// it. For v2 snapshots the flat-array sections — CSR offsets, edges and
// out-sums, the importance and dampening vectors, and the star-index tables
// — are viewed directly from the read-only mapping without copying (where
// the platform permits; big-endian or misaligned hosts transparently decode
// copies), so opening is dominated by the variable-length sections and the
// checksum pass rather than by array decoding. The expensive build stages
// (PageRank, the star index, the text index) are skipped entirely;
// BuildStats.Source reports SourceMmap.
//
// Because the engine may alias the mapping, Close must be called once the
// engine is no longer in use, and never while queries are in flight. A v1
// snapshot file is accepted too: it has no sectioned layout to alias, so it
// is decoded through the stream path (Source reports SourceStream) and the
// mapping is released before Open returns. Corrupt files are rejected with
// an error wrapping ErrBadSnapshot.
func Open(path string) (*Engine, error) {
	m, err := mmapio.Map(path)
	if err != nil {
		return nil, fmt.Errorf("cirank: opening snapshot: %w", err)
	}
	data := m.Data()
	if len(data) >= 8 && string(data[:4]) == engineMagic &&
		binary.LittleEndian.Uint32(data[4:]) == engineVersionV1 {
		e, lerr := LoadEngine(bytes.NewReader(data))
		if cerr := m.Close(); lerr == nil && cerr != nil {
			lerr = cerr
		}
		if lerr != nil {
			return nil, lerr
		}
		return e, nil
	}
	e, err := decodeV2(data, true)
	if err != nil {
		m.Close()
		return nil, err
	}
	e.closer = m.Close
	e.buildStats.Source = SourceMmap
	return e, nil
}
