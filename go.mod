module cirank

go 1.22
