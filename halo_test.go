package cirank

import (
	"testing"

	"cirank/internal/searchbench"
	"cirank/internal/shard"
)

// haloCeilings are the committed ceilings for the halo duplication factor of
// the default locality plan at 4 shards, radius 2, on the benchmark datasets
// at the CI smoke scale. The factor is deterministic in the partition
// inputs, so these are structural regression gates, not noise-tolerant perf
// checks: they sit between the locality plan's measured factor and the
// legacy contiguous split's, and fail if an ownership or projection change
// gives the improvement back. Lowering a factor further is fine — tighten
// the ceiling alongside such a change.
var haloCeilings = []struct {
	dataset string
	ceiling float64
}{
	{"dblp", 3.93}, // measured 3.88 locality vs 3.96 contiguous
	{"imdb", 3.80}, // measured 3.70 locality vs 3.94 contiguous
}

// TestHaloDuplicationCeiling reproduces the shard benchmark's partitions
// (scale 0.25, seed pair from searchbench, radius 2) and gates the locality
// plan's duplication factor at 4 shards against the committed ceiling. It
// also pins the ordering the locality strategy exists for: its factor must
// undercut the contiguous split of the same graph.
func TestHaloDuplicationCeiling(t *testing.T) {
	for _, tc := range haloCeilings {
		dataSeed, querySeed := searchbench.DefaultSeeds(tc.dataset)
		w, err := searchbench.Load(tc.dataset, 0.25, dataSeed, querySeed)
		if err != nil {
			t.Fatal(err)
		}
		loc, err := shard.NewPlan(w.G, 4, 2, shard.Locality)
		if err != nil {
			t.Fatal(err)
		}
		cont, err := shard.NewPlan(w.G, 4, 2, shard.Contiguous)
		if err != nil {
			t.Fatal(err)
		}
		locDup := loc.DuplicationFactor(w.G)
		contDup := cont.DuplicationFactor(w.G)
		t.Logf("%s scale 0.25, 4 shards radius 2: locality %.4f, contiguous %.4f, ceiling %.2f",
			tc.dataset, locDup, contDup, tc.ceiling)
		if locDup > tc.ceiling {
			t.Errorf("%s: locality duplication factor %.4f exceeds the committed ceiling %.2f",
				tc.dataset, locDup, tc.ceiling)
		}
		if locDup >= contDup {
			t.Errorf("%s: locality factor %.4f does not undercut contiguous %.4f",
				tc.dataset, locDup, contDup)
		}
	}
}
