package cirank

import (
	"fmt"
	"strings"

	"cirank/internal/graph"
	"cirank/internal/textindex"
)

// NodeDetail explains one row of a result under the RWMP model.
type NodeDetail struct {
	// Importance is the node's global random-walk importance p_v (Eq. 1).
	Importance float64
	// Dampening is the node's message retention rate d_v (Eq. 2); messages
	// passing through this node keep this fraction.
	Dampening float64
	// Generation is the number of messages the node emits for this query
	// (Eq. 3's r_vv); zero for free nodes.
	Generation float64
	// Score is the node's Eq. 3 score — the count of its least populous
	// incoming message type — for keyword-matching nodes; zero otherwise.
	Score float64
}

// FlowDetail is one delivered message count between two keyword-matching
// rows of a result.
type FlowDetail struct {
	// From and To index Result.Rows.
	From, To int
	// Delivered is the message count of From's type arriving at To after
	// splits and dampening along the tree path.
	Delivered float64
}

// Explanation decomposes a result's score into the RWMP quantities that
// produced it: per-node importance, dampening and generation, and the
// pairwise message flows whose minima define the node scores (Eq. 3) whose
// mean is the answer score (Eq. 4).
type Explanation struct {
	Score float64
	// Nodes parallels Result.Rows.
	Nodes []NodeDetail
	// Flows lists delivered counts between every ordered pair of
	// keyword-matching rows.
	Flows []FlowDetail
}

// Explain recomputes the score breakdown of a result returned by Search or
// SearchTerms for the same query.
func (e *Engine) Explain(r Result, query string) (*Explanation, error) {
	return e.ExplainTerms(r, textindex.Tokenize(query))
}

// ExplainTerms is Explain with pre-split terms.
func (e *Engine) ExplainTerms(r Result, terms []string) (*Explanation, error) {
	if r.tree == nil {
		return nil, fmt.Errorf("cirank: result was not produced by this process's Search")
	}
	ex := &Explanation{Score: r.Score}
	var sources []graph.NodeID
	sourceRow := make(map[graph.NodeID]int)
	for i, v := range r.nodes {
		if e.ix.QueryMatchCount(v, terms) > 0 {
			sources = append(sources, v)
			sourceRow[v] = i
		}
	}
	for _, v := range r.nodes {
		d := NodeDetail{
			Importance: e.imp[v],
			Dampening:  e.model.Damp(v),
			Generation: e.model.Generation(v, terms),
		}
		if e.ix.QueryMatchCount(v, terms) > 0 {
			d.Score = e.model.NodeScore(r.tree, v, sources, terms)
		}
		ex.Nodes = append(ex.Nodes, d)
	}
	for _, src := range sources {
		for _, dst := range sources {
			if src == dst {
				continue
			}
			ex.Flows = append(ex.Flows, FlowDetail{
				From:      sourceRow[src],
				To:        sourceRow[dst],
				Delivered: e.model.Delivered(r.tree, src, dst, terms),
			})
		}
	}
	return ex, nil
}

// String renders the explanation as a small human-readable report.
func (ex *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "answer score %.6g (mean of matched-node scores)\n", ex.Score)
	for i, n := range ex.Nodes {
		fmt.Fprintf(&sb, "  node %d: importance=%.3g damp=%.3f", i, n.Importance, n.Dampening)
		if n.Generation > 0 {
			fmt.Fprintf(&sb, " generates=%.4g score=%.4g", n.Generation, n.Score)
		}
		sb.WriteByte('\n')
	}
	for _, f := range ex.Flows {
		fmt.Fprintf(&sb, "  flow %d→%d delivered=%.4g\n", f.From, f.To, f.Delivered)
	}
	return sb.String()
}
