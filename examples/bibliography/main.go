// Bibliography: a larger DBLP-style scenario using the synthetic dataset
// generator end to end: generate a citation network, pick a query from the
// generated workload (with its planted ground truth), and show that CI-Rank
// recovers the intended answer — the most-cited paper joining the queried
// authors — at rank 1.
package main

import (
	"fmt"
	"log"
	"strings"

	"cirank"
	"cirank/internal/datagen"
	"cirank/internal/graph"
)

func main() {
	// Generate a synthetic bibliography: ~1000 papers, 300 authors,
	// preferential-attachment citations (heavy-tailed citation counts).
	ds, err := datagen.GenerateDBLP(datagen.DefaultDBLPConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	// Load it into the public engine via the builder.
	b := cirank.NewDBLPBuilder()
	for _, table := range []string{"Conference", "Paper", "Author"} {
		for _, key := range ds.DB.Keys(table) {
			tuple, _ := ds.DB.Lookup(table, key)
			b.MustInsert(table, key, tuple.Text)
		}
	}
	// Relationships are replayed from the generated database through the
	// same relational layer the generator used.
	built, err := datagen.Build(ds)
	if err != nil {
		log.Fatal(err)
	}
	// The generator's workload carries the planted gold answers.
	queries, err := built.GenerateWorkload(datagen.SyntheticConfig(5, 77))
	if err != nil {
		log.Fatal(err)
	}

	// For the engine itself we rebuild from the dataset: links are not
	// exposed tuple-by-tuple by the dataset API, so this example uses the
	// lower-level Built graph for gold bookkeeping and the public builder
	// for searching. Replay the links via the relational dump:
	replayLinks(b, built)

	eng, err := b.Build(cirank.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range queries {
		if q.Class != datagen.NonAdjacentPair {
			continue
		}
		// Show the interesting case: a gold connector that actually has
		// citations (zero-citation golds are ties among equals).
		if goldConn := built.G.Node(q.Gold.Root()); ds.Pop(goldConn.Relation, goldConn.Key) < 1 {
			continue
		}
		query := strings.Join(q.Terms, " ")
		fmt.Printf("\n== %q (intended: the most-cited paper joining the two authors) ==\n", query)
		results, err := eng.Search(query, 3)
		if err != nil {
			log.Fatal(err)
		}
		goldConn := built.G.Node(q.Gold.Root())
		fmt.Printf("planted gold connector: [%s %s] %q (%d citations)\n",
			goldConn.Relation, goldConn.Key, goldConn.Text, int(ds.Pop(goldConn.Relation, goldConn.Key)))
		for i, r := range results {
			fmt.Printf("#%d (score %.4g)\n", i+1, r.Score)
			for _, row := range r.Rows {
				marker := "  "
				if row.Matched {
					marker = "* "
				}
				cites := ""
				if row.Table == "Paper" {
					cites = fmt.Sprintf("  (%d citations)", int(ds.Pop("Paper", row.Key)))
				}
				fmt.Printf("  %s[%s %s] %s%s\n", marker, row.Table, row.Key, row.Text, cites)
			}
		}
	}
}

// replayLinks copies the generated relationship instances into the public
// builder by walking the graph built from the dataset: every directed edge
// pair corresponds to one relationship instance.
func replayLinks(b *cirank.Builder, built *datagen.Built) {
	g := built.G
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		from := g.Node(id)
		for _, e := range g.OutEdges(id) {
			to := g.Node(e.To)
			// Only take each undirected pair once, in the canonical
			// relationship direction.
			switch {
			case from.Relation == "Paper" && to.Relation == "Author":
				b.MustRelate("written_by", from.Key, to.Key)
			case from.Relation == "Paper" && to.Relation == "Conference":
				b.MustRelate("appears_in", from.Key, to.Key)
			case from.Relation == "Paper" && to.Relation == "Paper":
				// Citations: the citing→cited direction carries weight
				// 0.5, the reverse 0.1; take the heavier direction once.
				if e.Weight > 0.3 {
					b.MustRelate("cites", from.Key, to.Key)
				}
			}
		}
	}
}
