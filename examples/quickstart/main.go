// Quickstart: build a tiny bibliography, run a keyword search, print the
// ranked joined tuple trees. This is the paper's Fig. 2 scenario: two
// authors connected by two co-authored papers, one far more cited — CI-Rank
// ranks the answer through the influential paper first, which IR-style
// rankers cannot do (the connecting papers match no keyword).
package main

import (
	"fmt"
	"log"

	"cirank"
)

func main() {
	b := cirank.NewDBLPBuilder()

	// Two authors.
	b.MustInsert("Author", "a1", "Yannis Papakonstantinou")
	b.MustInsert("Author", "a2", "Jeffrey Ullman")

	// Two co-authored papers; p2 is heavily cited.
	b.MustInsert("Paper", "p1", "Capability Based Mediation in TSIMMIS")
	b.MustInsert("Paper", "p2", "The TSIMMIS Project Integration of Heterogeneous Information Sources")
	for _, p := range []string{"p1", "p2"} {
		b.MustRelate("written_by", p, "a1")
		b.MustRelate("written_by", p, "a2")
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("c%d", i)
		b.MustInsert("Paper", key, fmt.Sprintf("follow up work number %d", i))
		b.MustRelate("cites", key, "p2") // p2: 8 citations
	}
	b.MustInsert("Paper", "c8", "lone citation")
	b.MustRelate("cites", "c8", "p1") // p1: 1 citation

	eng, err := b.Build(cirank.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	results, err := eng.Search("Papakonstantinou Ullman", 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("#%d (score %.4g)\n", i+1, r.Score)
		for _, row := range r.Rows {
			marker := "  "
			if row.Matched {
				marker = "* "
			}
			fmt.Printf("  %s[%s %s] %s\n", marker, row.Table, row.Key, row.Text)
		}
	}
	// Output: the answer through p2 (8 citations) ranks above the one
	// through p1 (1 citation).
}
