// Custom: CI-Rank over a schema that is not in the paper — a tiny airline
// network — showing that the library is schema-agnostic: declare tables and
// relationships, set per-direction edge weights (your own Table II), load
// tuples from CSV, and search.
//
// The query "shaw turner" matches two frequent flyers; the answers connect
// them through flights they shared, and the busier route (the one carrying
// more passengers, hence more random-walk importance) ranks first.
package main

import (
	"fmt"
	"log"
	"strings"

	"cirank"
)

func main() {
	b, err := cirank.NewBuilder(
		[]string{"Passenger", "Flight", "Airport"},
		[]cirank.Relationship{
			{Name: "flies_on", From: "Passenger", To: "Flight"},
			{Name: "departs", From: "Flight", To: "Airport"},
			{Name: "arrives", From: "Flight", To: "Airport"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	// The domain's own edge-weight table.
	b.SetWeight("Passenger", "Flight", 1.0)
	b.SetWeight("Flight", "Passenger", 1.0)
	b.SetWeight("Flight", "Airport", 0.5)
	b.SetWeight("Airport", "Flight", 0.5)

	// Bulk-load from CSV (files in a real deployment; inline here).
	if _, err := b.LoadTable("Passenger", strings.NewReader(
		"key,name\n"+
			"ps1,amelia shaw\n"+
			"ps2,victor turner\n"+
			"ps3,nadia okafor\n")); err != nil {
		log.Fatal(err)
	}
	if _, err := b.LoadTable("Flight", strings.NewReader(
		"key,code\n"+
			"f100,morning shuttle\n"+
			"f200,red eye\n")); err != nil {
		log.Fatal(err)
	}
	if _, err := b.LoadTable("Airport", strings.NewReader(
		"key,name\n"+
			"sfo,san francisco international\n"+
			"jfk,john f kennedy\n")); err != nil {
		log.Fatal(err)
	}
	// Both target passengers flew both flights; the busy shuttle also
	// carries a third passenger and links two airports, making it the more
	// important connector.
	if _, err := b.LoadRelationship("flies_on", strings.NewReader(
		"ps1,f100\nps2,f100\nps3,f100\nps1,f200\nps2,f200\n")); err != nil {
		log.Fatal(err)
	}
	if _, err := b.LoadRelationship("departs", strings.NewReader("f100,sfo\nf200,jfk\n")); err != nil {
		log.Fatal(err)
	}
	if _, err := b.LoadRelationship("arrives", strings.NewReader("f100,jfk\n")); err != nil {
		log.Fatal(err)
	}

	eng, err := b.Build(cirank.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	results, err := eng.Search("shaw turner", 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("#%d (score %.4g)\n", i+1, r.Score)
		for _, row := range r.Rows {
			marker := "  "
			if row.Matched {
				marker = "* "
			}
			fmt.Printf("  %s[%s %s] %s\n", marker, row.Table, row.Key, row.Text)
		}
	}
	// Explain the winner.
	if len(results) > 0 {
		ex, err := eng.Explain(results[0], "shaw turner")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nexplanation of #1:")
		fmt.Print(ex)
	}
}
