// Movies: the paper's two IMDB motivating examples in one program.
//
//  1. Fig. 3 ("Bloom Wood Mortensen"): three actors co-star in several
//     movies; BANKS-style scoring cannot distinguish the connecting movies
//     because it sees only root and leaf weights, while CI-Rank prefers the
//     popular movie.
//  2. Fig. 4 ("wilson cruz"): the right answer is the single actor Wilson
//     Cruz; a tree connecting "Charlie Wilson's War" to "Penélope Cruz"
//     through the hugely important free node "Tom Hanks" must not dominate.
package main

import (
	"fmt"
	"log"

	"cirank"
)

func main() {
	b := cirank.NewIMDBBuilder()

	// --- Fig. 3 cast: three actors in two shared movies. -----------------
	b.MustInsert("Actor", "bloom", "Orlando Bloom")
	b.MustInsert("Actor", "wood", "Elijah Wood")
	b.MustInsert("Actor", "mortensen", "Viggo Mortensen")
	b.MustInsert("Movie", "lotr", "Fellowship of the Ring")
	b.MustInsert("Movie", "obscure", "Convention Bloopers Reel")
	for _, a := range []string{"bloom", "wood", "mortensen"} {
		b.MustRelate("acts_in", a, "lotr")
		b.MustRelate("acts_in", a, "obscure")
	}
	// The blockbuster has a big supporting cast and a studio; the obscure
	// movie has nothing else. That degree difference is what makes it
	// important to the random walk.
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("extra%d", i)
		b.MustInsert("Actor", key, fmt.Sprintf("supporting cast %d", i))
		b.MustRelate("acts_in", key, "lotr")
	}
	b.MustInsert("Company", "studio", "new line cinema")
	b.MustRelate("made_by", "studio", "lotr")

	// --- Fig. 4 cast: the ambiguous "wilson cruz" query. -----------------
	b.MustInsert("Actor", "wcruz", "Wilson Cruz")
	b.MustInsert("Movie", "cww", "Charlie Wilson War")
	b.MustInsert("Actress", "pcruz", "Penelope Cruz")
	b.MustInsert("Actor", "hanks", "Tom Hanks")
	b.MustInsert("Movie", "tribute", "America Tribute to Heroes")
	b.MustRelate("acts_in", "hanks", "cww")
	b.MustRelate("acts_in", "hanks", "tribute")
	b.MustRelate("actress_in", "pcruz", "tribute")
	// Tom Hanks is enormously connected.
	for i := 0; i < 15; i++ {
		key := fmt.Sprintf("hanksmovie%d", i)
		b.MustInsert("Movie", key, fmt.Sprintf("hanks feature %d", i))
		b.MustRelate("acts_in", "hanks", key)
	}

	eng, err := b.Build(cirank.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	show := func(query string, k int) {
		fmt.Printf("\n== %q ==\n", query)
		results, err := eng.Search(query, k)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range results {
			fmt.Printf("#%d (score %.4g)\n", i+1, r.Score)
			for _, row := range r.Rows {
				marker := "  "
				if row.Matched {
					marker = "* "
				}
				fmt.Printf("  %s[%s %s] %s\n", marker, row.Table, row.Key, row.Text)
			}
		}
	}

	// Fig. 3: the top answer must connect the three actors through the
	// popular movie, not the obscure one.
	show("bloom wood mortensen", 2)

	// Fig. 4: the single actor Wilson Cruz must beat the Tom-Hanks-powered
	// tree — the free node domination problem CI-Rank avoids.
	show("wilson cruz", 3)
}
