// Feedback: the paper's user-preference adaptation (§VI-A uses 29,078
// manually labeled AOL queries "as user feedback to bias the CI-RANK
// model"; §VIII names feedback-driven adaptation as future work).
//
// The implementation biases the random walk's teleportation vector: tuples
// users clicked receive extra teleport mass, raising their importance and
// therefore their answers' ranks. This example shows the ambiguous query
// "marlowe" flipping toward the entity users actually engage with.
package main

import (
	"fmt"
	"log"

	"cirank"
)

func build(feedbackMix float64) (*cirank.Engine, error) {
	b := cirank.NewIMDBBuilder()
	// Two same-named actors with symmetric filmographies.
	b.MustInsert("Actor", "marlowe-elder", "Philip Marlowe")
	b.MustInsert("Actor", "marlowe-younger", "Kit Marlowe")
	for i := 0; i < 4; i++ {
		elder := fmt.Sprintf("em%d", i)
		younger := fmt.Sprintf("ym%d", i)
		b.MustInsert("Movie", elder, fmt.Sprintf("noir classic %d", i))
		b.MustInsert("Movie", younger, fmt.Sprintf("stage drama %d", i))
		b.MustRelate("acts_in", "marlowe-elder", elder)
		b.MustRelate("acts_in", "marlowe-younger", younger)
	}
	// Users consistently click the younger Marlowe in search results.
	b.AddFeedback("Actor", "marlowe-younger", 5)

	cfg := cirank.DefaultConfig()
	cfg.FeedbackMix = feedbackMix
	return b.Build(cfg)
}

func main() {
	for _, mix := range []float64{0, 0.3} {
		eng, err := build(mix)
		if err != nil {
			log.Fatal(err)
		}
		results, err := eng.Search("marlowe", 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== feedback mix %.1f ==\n", mix)
		for i, r := range results {
			imp, _ := eng.Importance(r.Rows[0].Table, r.Rows[0].Key)
			fmt.Printf("#%d (score %.4g, importance %.4g) [%s %s] %s\n",
				i+1, r.Score, imp, r.Rows[0].Table, r.Rows[0].Key, r.Rows[0].Text)
		}
	}
	// With no feedback the two Marlowes rank by raw graph importance
	// (symmetric, so effectively tied); with feedback the clicked actor
	// moves to rank 1.
}
