package cirank

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// saveV2 serializes the engine and returns the snapshot bytes.
func saveV2(t testing.TB, eng *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeSnapFile writes snapshot bytes into a temp file for Open.
func writeSnapFile(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "eng.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// findEntry locates the section-table entry for name and returns its byte
// offset within data plus the section's (offset, length).
func findEntry(t testing.TB, data []byte, name string) (entryOff, off, length int) {
	t.Helper()
	count := int(binary.LittleEndian.Uint32(data[8:]))
	for i := 0; i < count; i++ {
		e := snapHeaderSize + i*snapEntrySize
		got := string(bytes.TrimRight(data[e:e+snapNameLen], "\x00"))
		if got == name {
			return e, int(binary.LittleEndian.Uint64(data[e+16:])), int(binary.LittleEndian.Uint64(data[e+24:]))
		}
	}
	t.Fatalf("section %q not found", name)
	return 0, 0, 0
}

// fixSectionCRC recomputes one entry's payload CRC after a payload mutation.
func fixSectionCRC(data []byte, entryOff int) {
	off := binary.LittleEndian.Uint64(data[entryOff+16:])
	length := binary.LittleEndian.Uint64(data[entryOff+24:])
	crc := crc32.ChecksumIEEE(data[off : off+length])
	binary.LittleEndian.PutUint32(data[entryOff+32:], crc)
}

// fixTableCRC recomputes the header's section-table CRC after a table
// mutation, so structural corruptions reach the check they target instead of
// dying at the checksum gate.
func fixTableCRC(data []byte) {
	count := int(binary.LittleEndian.Uint32(data[8:]))
	table := data[snapHeaderSize : snapHeaderSize+count*snapEntrySize]
	binary.LittleEndian.PutUint32(data[12:], crc32.ChecksumIEEE(table))
}

// mutated returns a copy of data with f applied.
func mutated(data []byte, f func([]byte)) []byte {
	out := append([]byte(nil), data...)
	f(out)
	return out
}

// requireSameResults asserts two engines return identical answers (scores,
// rows and tree edges) for the query.
func requireSameResults(t *testing.T, a, b *Engine, query string, k int) {
	t.Helper()
	ra, err := a.Search(query, k)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Search(query, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("result counts differ for %q: %d vs %d", query, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Score != rb[i].Score {
			t.Errorf("result %d for %q: score %g vs %g", i, query, ra[i].Score, rb[i].Score)
		}
		if len(ra[i].Rows) != len(rb[i].Rows) {
			t.Fatalf("result %d for %q: %d vs %d rows", i, query, len(ra[i].Rows), len(rb[i].Rows))
		}
		for j := range ra[i].Rows {
			if ra[i].Rows[j] != rb[i].Rows[j] {
				t.Errorf("result %d row %d for %q: %+v vs %+v", i, j, query, ra[i].Rows[j], rb[i].Rows[j])
			}
		}
		if len(ra[i].Edges) != len(rb[i].Edges) {
			t.Fatalf("result %d for %q: %d vs %d edges", i, query, len(ra[i].Edges), len(rb[i].Edges))
		}
		for j := range ra[i].Edges {
			if ra[i].Edges[j] != rb[i].Edges[j] {
				t.Errorf("result %d edge %d for %q: %v vs %v", i, j, query, ra[i].Edges[j], rb[i].Edges[j])
			}
		}
	}
}

// TestOpenMmapSkipsBuild is the headline property of the v2 format: Open
// must reach a queryable engine without running PageRank, the star-index
// build or the text-index build, and must answer exactly like the engine
// that was saved.
func TestOpenMmapSkipsBuild(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	path := writeSnapFile(t, saveV2(t, eng))
	loaded, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st := loaded.BuildStats()
	if st.Source != SourceMmap {
		t.Errorf("BuildStats().Source = %q, want %q", st.Source, SourceMmap)
	}
	if st.PageRank.Duration != 0 || st.PathIndex.Duration != 0 ||
		st.TextIndex.Duration != 0 || st.Graph.Duration != 0 {
		t.Errorf("opened engine reports build-stage work: %+v", st)
	}
	if loaded.starIdx == nil {
		t.Error("star index not restored from snapshot")
	}
	requireSameResults(t, eng, loaded, "papakonstantinou ullman", 3)
	requireSameResults(t, eng, loaded, "tsimmis", 2)
	a, _ := eng.Importance("Paper", "p2")
	b, ok := loaded.Importance("Paper", "p2")
	if !ok || a != b {
		t.Errorf("importance after open = %g, %v; want %g", b, ok, a)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestOpenDeterministicResave pins the canonical-encoding property end to
// end: an engine opened zero-copy re-saves to exactly the bytes it was
// opened from.
func TestOpenDeterministicResave(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	snap := saveV2(t, eng)
	loaded, err := Open(writeSnapFile(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	again := saveV2(t, loaded)
	if !bytes.Equal(snap, again) {
		t.Fatalf("re-save differs: %d vs %d bytes", len(snap), len(again))
	}
}

// TestOpenAcceptsV1 checks the ops convenience path: pointing Open at a
// legacy v1 file falls back to the stream decoder instead of failing.
func TestOpenAcceptsV1(t *testing.T) {
	loaded, err := Open(filepath.Join("testdata", "snapshots", "fig2_v1.snap"))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.BuildStats().Source; got != SourceStream {
		t.Errorf("v1 file opened with Source %q, want %q", got, SourceStream)
	}
	if _, err := loaded.Search("ullman", 1); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenV1Snapshot loads the committed v1-format snapshot and checks it
// still produces the same answers as a fresh build of the same fixture —
// the backward-compatibility contract for snapshots written before the
// sectioned format.
func TestGoldenV1Snapshot(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "snapshots", "fig2_v1.snap"))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("committed v1 snapshot no longer loads: %v", err)
	}
	fresh := fig2Engine(t, DefaultConfig())
	if loaded.NumNodes() != fresh.NumNodes() || loaded.NumEdges() != fresh.NumEdges() {
		t.Fatalf("golden graph shape %d/%d, want %d/%d",
			loaded.NumNodes(), loaded.NumEdges(), fresh.NumNodes(), fresh.NumEdges())
	}
	requireSameResults(t, fresh, loaded, "papakonstantinou ullman", 3)
	requireSameResults(t, fresh, loaded, "tsimmis ullman", 2)
	// A v1 engine re-saves in v2 and keeps answering identically.
	resaved, err := LoadEngine(bytes.NewReader(saveV2(t, loaded)))
	if err != nil {
		t.Fatalf("v1 engine fails to round-trip through v2: %v", err)
	}
	requireSameResults(t, fresh, resaved, "papakonstantinou ullman", 3)
}

// mergedEngine builds an IMDB engine where one person appears in two role
// tables (Actor nm1, Director nm9) merged via a shared entity key (§VI-A).
func mergedEngine(t testing.TB) *Engine {
	t.Helper()
	b := NewIMDBBuilder()
	insert := func(table, key, text, entity string) {
		t.Helper()
		if err := b.InsertEntity(table, key, text, entity); err != nil {
			t.Fatal(err)
		}
	}
	insert("Actor", "nm1", "Clint Eastwood", "person-1")
	insert("Director", "nm9", "Clint Eastwood", "person-1")
	insert("Movie", "m1", "Million Dollar Baby", "")
	insert("Movie", "m2", "Unforgiven", "")
	insert("Actor", "nm2", "Morgan Freeman", "")
	b.MustRelate("acts_in", "nm1", "m1")
	b.MustRelate("directs", "nm9", "m1")
	b.MustRelate("directs", "nm9", "m2")
	b.MustRelate("acts_in", "nm2", "m1")
	b.MustRelate("acts_in", "nm2", "m2")
	eng, err := b.Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestMergedEntityLookupSurvivesReload is the satellite regression for the
// v1 limitation that motivated the entmap section: a merged-away role key
// (the Director row whose tuple merged into the Actor node) must keep
// resolving through Importance after every load path.
func TestMergedEntityLookupSurvivesReload(t *testing.T) {
	eng := mergedEngine(t)
	actorImp, ok := eng.Importance("Actor", "nm1")
	if !ok {
		t.Fatal("built engine cannot resolve Actor/nm1")
	}
	dirImp, ok := eng.Importance("Director", "nm9")
	if !ok {
		t.Fatal("built engine cannot resolve merged key Director/nm9")
	}
	if actorImp != dirImp {
		t.Fatalf("merged tuples report different importance: %g vs %g", actorImp, dirImp)
	}

	snap := saveV2(t, eng)
	streamed, err := LoadEngine(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(writeSnapFile(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	for name, loaded := range map[string]*Engine{"stream": streamed, "mmap": opened} {
		for _, probe := range []struct{ table, key string }{
			{"Actor", "nm1"}, {"Director", "nm9"}, {"Movie", "m2"},
		} {
			got, ok := loaded.Importance(probe.table, probe.key)
			if !ok {
				t.Errorf("%s load cannot resolve %s/%s", name, probe.table, probe.key)
				continue
			}
			want, _ := eng.Importance(probe.table, probe.key)
			if got != want {
				t.Errorf("%s load: importance of %s/%s = %g, want %g", name, probe.table, probe.key, got, want)
			}
		}
		if _, ok := loaded.Importance("Actor", "missing"); ok {
			t.Errorf("%s load resolves a key that was never inserted", name)
		}
	}
}

// TestSnapshotV2Corruptions drives every validation branch of the v2
// decoder with a targeted mutation; each must be rejected with a typed
// ErrBadSnapshot, never a panic or a silently wrong engine.
func TestSnapshotV2Corruptions(t *testing.T) {
	snap := saveV2(t, fig2Engine(t, DefaultConfig()))
	metaEntry, metaOff, _ := findEntry(t, snap, secMeta)
	impEntry, impOff, _ := findEntry(t, snap, secImp)
	_ = impEntry

	cases := map[string][]byte{
		"truncated header":     snap[:10],
		"truncated table":      snap[:snapHeaderSize+snapEntrySize-4],
		"truncated payloads":   snap[:len(snap)-8],
		"bad magic":            mutated(snap, func(d []byte) { d[0] = 'X' }),
		"future version":       mutated(snap, func(d []byte) { binary.LittleEndian.PutUint32(d[4:], 3) }),
		"zero section count":   mutated(snap, func(d []byte) { binary.LittleEndian.PutUint32(d[8:], 0) }),
		"huge section count":   mutated(snap, func(d []byte) { binary.LittleEndian.PutUint32(d[8:], maxSections+1) }),
		"table CRC mismatch":   mutated(snap, func(d []byte) { d[snapHeaderSize] ^= 0xff }),
		"payload CRC mismatch": mutated(snap, func(d []byte) { d[impOff] ^= 0xff }),
		"unknown section name": mutated(snap, func(d []byte) {
			copy(d[metaEntry:metaEntry+snapNameLen], append([]byte("bogus"), make([]byte, snapNameLen-5)...))
			fixTableCRC(d)
		}),
		"nonzero reserved word": mutated(snap, func(d []byte) {
			d[metaEntry+36] = 1
			fixTableCRC(d)
		}),
		"misaligned offset": mutated(snap, func(d []byte) {
			binary.LittleEndian.PutUint64(d[metaEntry+16:], uint64(metaOff+8))
			fixTableCRC(d)
		}),
		"overlapping sections": mutated(snap, func(d []byte) {
			nodesEntry, _, _ := findEntry(t, d, secNodes)
			binary.LittleEndian.PutUint64(d[nodesEntry+16:], uint64(metaOff))
			fixTableCRC(d)
		}),
		"section out of bounds": mutated(snap, func(d []byte) {
			binary.LittleEndian.PutUint64(d[metaEntry+24:], uint64(len(d)))
			fixTableCRC(d)
		}),
		"unknown meta flags": mutated(snap, func(d []byte) {
			binary.LittleEndian.PutUint64(d[metaOff+32:], 1<<7)
			fixSectionCRC(d, metaEntry)
			fixTableCRC(d)
		}),
		"star sections without flag": mutated(snap, func(d []byte) {
			binary.LittleEndian.PutUint64(d[metaOff+32:], 0)
			fixSectionCRC(d, metaEntry)
			fixTableCRC(d)
		}),
		"node count mismatch": mutated(snap, func(d []byte) {
			binary.LittleEndian.PutUint64(d[metaOff+16:], 1<<40)
			fixSectionCRC(d, metaEntry)
			fixTableCRC(d)
		}),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := LoadEngine(bytes.NewReader(data))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("error is not ErrBadSnapshot: %v", err)
			}
			// The mmap path shares the decoder and must agree.
			if _, err := Open(writeSnapFile(t, data)); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("Open error is not ErrBadSnapshot: %v", err)
			}
		})
	}
}

// TestSnapshotUnsortedEntMapRejected pins the canonical-encoding rule: the
// entity map must be strictly (table, key)-sorted, which also catches
// duplicates.
func TestSnapshotUnsortedEntMapRejected(t *testing.T) {
	eng := fig2Engine(t, DefaultConfig())
	if len(eng.mapEntries) < 2 {
		t.Fatal("fixture has too few mapping entries")
	}
	// Re-save with the first two mapping entries swapped; all CRCs are
	// recomputed by Save, so only the sortedness check can reject it.
	eng.mapEntries[0], eng.mapEntries[1] = eng.mapEntries[1], eng.mapEntries[0]
	swapped := saveV2(t, eng)
	eng.mapEntries[0], eng.mapEntries[1] = eng.mapEntries[1], eng.mapEntries[0]
	_, err := LoadEngine(bytes.NewReader(swapped))
	if err == nil {
		t.Fatal("unsorted entity map accepted")
	}
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("error is not ErrBadSnapshot: %v", err)
	}
}

// TestLoadEngineStreamSource checks the io.Reader path reports stream
// provenance and zero stage timings.
func TestLoadEngineStreamSource(t *testing.T) {
	snap := saveV2(t, fig2Engine(t, DefaultConfig()))
	loaded, err := LoadEngine(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	st := loaded.BuildStats()
	if st.Source != SourceStream {
		t.Errorf("Source = %q, want %q", st.Source, SourceStream)
	}
	if st.PageRank.Duration != 0 || st.Total != 0 {
		t.Errorf("loaded engine reports build work: %+v", st)
	}
}
